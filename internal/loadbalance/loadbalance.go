// Package loadbalance solves the optimal load-distribution subproblem of
// COCA: given a fixed speed vector (GSD Algorithm 2 line 3, Eq. (18)),
// distribute the total arrival rate λ(t) across server groups to minimize
//
//	We·[p(λ,x) − r]^+ + Wd·d(λ,x)
//	s.t. Σ_g L_g = λ,  0 ≤ L_g ≤ γ·n_g·x_g,
//
// where group power is affine in load and the M/G/1/PS delay cost is convex.
// The [·]^+ kink makes the objective piecewise convex; we solve it by regime
// analysis — water-fill with the full electricity weight (grid regime), with
// zero weight (renewable-surplus regime), and, when the two disagree, bisect
// the effective weight to pin total power exactly at the on-site supply r(t)
// (the kink).
//
// Two solvers are provided: Solve, a single-coordinator KKT water-filling
// solver, and SolveDistributed, a dual-decomposition implementation in which
// every server group runs as an autonomous goroutine answering price signals
// (the distributed solution the paper points to via refs [5] and [27]).
package loadbalance

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dcmodel"
	"repro/internal/numopt"
)

// ErrInfeasible is returned when λ exceeds the γ-discounted capacity of the
// given speed configuration.
var ErrInfeasible = errors.New("loadbalance: load exceeds configuration capacity")

// group holds the precomputed per-group constants of the subproblem.
// Off groups (speed 0) are excluded from instances entirely.
type group struct {
	idx     int     // index into the cluster's group list
	n       float64 // number of servers
	rate    float64 // R = n·x: aggregate service rate
	slopeKW float64 // A = PUE·p_c(x)/x: marginal facility power per RPS
	cap     float64 // γ·R: maximum allowed load
}

// Instance is a prepared subproblem for one (problem, speeds) pair. Prepare
// once, then Solve; preparation separates validation from the hot path so
// GSD can re-solve thousands of proposals cheaply.
type Instance struct {
	prob   *dcmodel.SlotProblem
	speeds []int
	groups []group
	baseKW float64 // PUE · Σ static power of on groups (load-independent)
}

// NewInstance validates and prepares the subproblem. It returns
// ErrInfeasible when the speed vector cannot carry the problem's λ.
func NewInstance(p *dcmodel.SlotProblem, speeds []int) (*Instance, error) {
	if len(speeds) != len(p.Cluster.Groups) {
		return nil, fmt.Errorf("loadbalance: %d speeds for %d groups",
			len(speeds), len(p.Cluster.Groups))
	}
	in := &Instance{prob: p, speeds: speeds}
	var capSum float64
	for g := range p.Cluster.Groups {
		k := speeds[g]
		if k < 0 || k > p.Cluster.Groups[g].Type.NumSpeeds() {
			return nil, fmt.Errorf("loadbalance: group %d speed index %d out of range", g, k)
		}
		if k == 0 {
			continue
		}
		grp := &p.Cluster.Groups[g]
		r := grp.RateAt(k)
		in.groups = append(in.groups, group{
			idx:     g,
			n:       float64(grp.N),
			rate:    r,
			slopeKW: p.Cluster.PUE * grp.PowerSlopeKWPerRPS(k),
			cap:     p.Cluster.Gamma * r,
		})
		in.baseKW += p.Cluster.PUE * float64(grp.N) * grp.Type.StaticKW
		capSum += p.Cluster.Gamma * r
	}
	if p.LambdaRPS > capSum*(1+1e-12) {
		return nil, ErrInfeasible
	}
	return in, nil
}

// marginal returns d(cost)/dL for one group at load v under electricity
// weight omega.
func (in *Instance) marginal(g group, omega, v float64) float64 {
	den := g.rate - v
	if den <= 0 {
		return math.Inf(1)
	}
	return omega*g.slopeKW + in.prob.Wd*g.n*g.rate/(den*den)
}

// alloc returns the load at which the group's marginal cost equals price nu
// under electricity weight omega, clamped to [0, cap].
func (in *Instance) alloc(g group, omega, nu float64) float64 {
	rem := nu - omega*g.slopeKW
	if rem <= 0 {
		return 0
	}
	if in.prob.Wd <= 0 {
		// Pure electricity cost: bang-bang (handled by fillNoDelay; this
		// path keeps alloc total so water-filling code stays generic).
		return g.cap
	}
	// Wd·n·R/(R−L)² = rem  →  L = R − sqrt(Wd·n·R/rem).
	l := g.rate - math.Sqrt(in.prob.Wd*g.n*g.rate/rem)
	return numopt.Clamp(l, 0, g.cap)
}

// fill water-fills the total load across groups under electricity weight
// omega, returning per-instance-group loads.
func (in *Instance) fill(omega float64) ([]float64, error) {
	if in.prob.Wd <= 0 {
		return in.fillNoDelay(omega), nil
	}
	items := make([]numopt.WaterFillItem, len(in.groups))
	for i, g := range in.groups {
		g := g
		items[i] = numopt.WaterFillItem{
			Cap:   g.cap,
			Deriv: func(v float64) float64 { return in.marginal(g, omega, v) },
			Alloc: func(nu float64) float64 { return in.alloc(g, omega, nu) },
		}
	}
	out, err := numopt.WaterFill(items, in.prob.LambdaRPS, waterFillTol)
	if err != nil {
		return nil, ErrInfeasible
	}
	return out, nil
}

// fillNoDelay handles the degenerate Wd = 0 case (no delay weight): the cost
// is linear in each load, so fill groups to their caps in ascending order of
// electricity slope.
func (in *Instance) fillNoDelay(omega float64) []float64 {
	order := make([]int, len(in.groups))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return omega*in.groups[order[a]].slopeKW < omega*in.groups[order[b]].slopeKW
	})
	out := make([]float64, len(in.groups))
	remaining := in.prob.LambdaRPS
	for _, i := range order {
		take := math.Min(remaining, in.groups[i].cap)
		out[i] = take
		remaining -= take
		if remaining <= 0 {
			break
		}
	}
	return out
}

const waterFillTol = 1e-7

// powerOf returns the facility power of an instance-group load vector.
func (in *Instance) powerOf(loads []float64) float64 {
	p := in.baseKW
	for i, g := range in.groups {
		p += g.slopeKW * loads[i]
	}
	return p
}

// expand scatters instance-group loads back to full cluster-group indexing.
func (in *Instance) expand(loads []float64) []float64 {
	full := make([]float64, len(in.prob.Cluster.Groups))
	for i, g := range in.groups {
		full[g.idx] = loads[i]
	}
	return full
}

// Solve computes the optimal load distribution for the instance using the
// centralized KKT water-filling solver with regime analysis on the [·]^+
// kink.
func (in *Instance) Solve() (dcmodel.Solution, error) {
	loads, err := in.solveWith(in.fill)
	if err != nil {
		return dcmodel.Solution{}, err
	}
	full := in.expand(loads)
	return dcmodel.Solution{
		Speeds: append([]int(nil), in.speeds...),
		Load:   full,
		Value:  in.prob.Objective(in.speeds, full),
	}, nil
}

// solveWith runs the regime analysis with a pluggable filler so the
// distributed solver can reuse the identical logic.
func (in *Instance) solveWith(fill func(omega float64) ([]float64, error)) ([]float64, error) {
	if len(in.groups) == 0 {
		if in.prob.LambdaRPS > 0 {
			return nil, ErrInfeasible
		}
		return nil, nil
	}
	r := in.prob.OnsiteKW
	// Regime "grid": electricity weight fully active.
	gridLoads, err := fill(in.prob.We)
	if err != nil {
		return nil, err
	}
	if in.prob.We == 0 || in.powerOf(gridLoads) >= r-powerTol {
		return gridLoads, nil
	}
	// Regime "surplus": on-site renewables cover everything; electricity
	// weight vanishes under the [·]^+.
	freeLoads, err := fill(0)
	if err != nil {
		return nil, err
	}
	if in.powerOf(freeLoads) <= r+powerTol {
		return freeLoads, nil
	}
	// Kink regime: the optimum pins total power at r. Total power is
	// non-increasing in the effective weight ω, so bisect ω ∈ [0, We].
	omega := numopt.BisectMonotone(func(w float64) float64 {
		loads, ferr := fill(w)
		if ferr != nil {
			err = ferr
			return 0
		}
		return in.powerOf(loads)
	}, r, 0, in.prob.We, in.prob.We*1e-12, 100)
	if err != nil {
		return nil, err
	}
	return fill(omega)
}

const powerTol = 1e-6 // kW: tolerance when comparing power against r(t)

// Solve computes the optimal load split of Eq. (18) for fixed speeds using
// the centralized solver. See Instance for the reusable form.
func Solve(p *dcmodel.SlotProblem, speeds []int) (dcmodel.Solution, error) {
	in, err := NewInstance(p, speeds)
	if err != nil {
		return dcmodel.Solution{}, err
	}
	return in.Solve()
}
