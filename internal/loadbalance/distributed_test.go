package loadbalance

import (
	"math"
	"testing"

	"repro/internal/dcmodel"
	"repro/internal/stats"
)

func TestDistributedMatchesCentralized(t *testing.T) {
	rng := stats.NewRNG(55)
	for trial := 0; trial < 20; trial++ {
		c := twoGroups(trial%2 == 0)
		k1 := 1 + rng.IntN(4)
		k2 := rng.IntN(5)
		speeds := []int{k1, k2}
		capSum := c.UsableCapacityRPS(speeds)
		if capSum < 1 {
			continue
		}
		p := &dcmodel.SlotProblem{
			Cluster:   c,
			LambdaRPS: rng.Uniform(0, 0.95*capSum),
			We:        rng.Uniform(0, 0.5),
			Wd:        rng.Uniform(0.001, 0.05),
			OnsiteKW:  rng.Uniform(0, 8),
		}
		cent, err := Solve(p, speeds)
		if err != nil {
			t.Fatalf("trial %d centralized: %v", trial, err)
		}
		dist, err := SolveDistributed(p, speeds)
		if err != nil {
			t.Fatalf("trial %d distributed: %v", trial, err)
		}
		checkFeasible(t, p, dist)
		if math.Abs(dist.Value-cent.Value) > 1e-3*(1+cent.Value) {
			t.Errorf("trial %d: distributed value %v != centralized %v",
				trial, dist.Value, cent.Value)
		}
	}
}

func TestDistributedManyGroups(t *testing.T) {
	c := dcmodel.PaperCluster(16)
	speeds := make([]int, len(c.Groups))
	for i := range speeds {
		speeds[i] = 1 + i%4
	}
	p := &dcmodel.SlotProblem{
		Cluster:   c,
		LambdaRPS: 200000,
		We:        0.08,
		Wd:        0.01,
		OnsiteKW:  3000,
	}
	cent, err := Solve(p, speeds)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := SolveDistributed(p, speeds)
	if err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, p, dist)
	if math.Abs(dist.Value-cent.Value) > 1e-3*(1+cent.Value) {
		t.Errorf("distributed %v vs centralized %v", dist.Value, cent.Value)
	}
}

func TestDistributedRejectsZeroDelayWeight(t *testing.T) {
	c := twoGroups(false)
	p := &dcmodel.SlotProblem{Cluster: c, LambdaRPS: 10, We: 1, Wd: 0}
	if _, err := SolveDistributed(p, []int{4, 4}); err != ErrNeedsDelayWeight {
		t.Errorf("want ErrNeedsDelayWeight, got %v", err)
	}
}

func TestDistributedInfeasible(t *testing.T) {
	c := twoGroups(false)
	p := &dcmodel.SlotProblem{Cluster: c, LambdaRPS: 1e7, We: 1, Wd: 0.01}
	if _, err := SolveDistributed(p, []int{4, 4}); err != ErrInfeasible {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestDistributedZeroLoad(t *testing.T) {
	c := twoGroups(false)
	p := &dcmodel.SlotProblem{Cluster: c, LambdaRPS: 0, We: 1, Wd: 0.01}
	sol, err := SolveDistributed(p, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range sol.Load {
		if l != 0 {
			t.Errorf("zero-λ distributed load = %v", sol.Load)
		}
	}
}
