package loadbalance

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dcmodel"
	"repro/internal/numopt"
)

// This file pins the struct-of-arrays refactor against the layout it
// replaced: a reference solver that walks the cluster's Group structs
// directly (per-call accessor arithmetic, closure-based WaterFillItems
// through the generic numopt.WaterFill path — no ClusterArrays, no
// BulkWaterSystem) and runs the identical regime analysis. For randomized
// problems over heterogeneous clusters the two must produce bit-for-bit
// identical load vectors, objectives and Ledger charges.

// refGroup is one on group's constants in the old (ad hoc, per-solve)
// layout, gathered from the Group accessors at solve time.
type refGroup struct {
	idx                 int
	n, rate, slope, cap float64
}

// refSolver is the old-layout reference: plain group structs + closures.
type refSolver struct {
	p      *dcmodel.SlotProblem
	speeds []int
	groups []refGroup
	baseKW float64
	capSum float64
}

func newRefSolver(p *dcmodel.SlotProblem, speeds []int) *refSolver {
	r := &refSolver{p: p, speeds: speeds}
	for g := range p.Cluster.Groups {
		grp := &p.Cluster.Groups[g]
		if speeds[g] == 0 {
			continue
		}
		rate := grp.RateAt(speeds[g])
		r.groups = append(r.groups, refGroup{
			idx:   g,
			n:     float64(grp.N),
			rate:  rate,
			slope: p.Cluster.PUE * grp.PowerSlopeKWPerRPS(speeds[g]),
			cap:   p.Cluster.Gamma * rate,
		})
	}
	for i := range r.groups {
		g := &p.Cluster.Groups[r.groups[i].idx]
		r.baseKW += p.Cluster.PUE * float64(g.N) * g.Type.StaticKW
		r.capSum += r.groups[i].cap
	}
	return r
}

// items builds the closure-based WaterFillItems for one electricity weight —
// the pre-SoA representation, one closure pair per group per fill.
func (r *refSolver) items(omega float64) []numopt.WaterFillItem {
	out := make([]numopt.WaterFillItem, len(r.groups))
	wd := r.p.Wd
	for i := range out {
		g := r.groups[i]
		out[i] = numopt.WaterFillItem{
			Cap: g.cap,
			Deriv: func(v float64) float64 {
				den := g.rate - v
				if den <= 0 {
					return math.Inf(1)
				}
				return omega*g.slope + wd*g.n*g.rate/(den*den)
			},
			Alloc: func(nu float64) float64 {
				rem := nu - omega*g.slope
				if rem <= 0 {
					return 0
				}
				if wd <= 0 {
					return g.cap
				}
				l := g.rate - math.Sqrt(wd*g.n*g.rate/rem)
				return numopt.Clamp(l, 0, g.cap)
			},
		}
	}
	return out
}

func (r *refSolver) fill(omega float64) ([]float64, error) {
	if r.p.Wd <= 0 {
		// Degenerate linear case: fill caps in ascending ω·slope order,
		// the historical per-call sort.Slice of fillNoDelay.
		// sort.Slice, not a stable sort: with bit-equal slopes (same server
		// generation at the same level) the unstable permutation decides
		// which group absorbs the partial fill, and the historical solver —
		// and the orderCache reproducing it — used sort.Slice per call.
		order := make([]int, len(r.groups))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return omega*r.groups[order[a]].slope < omega*r.groups[order[b]].slope
		})
		loads := make([]float64, len(r.groups))
		remaining := r.p.LambdaRPS
		for _, i := range order {
			take := math.Min(remaining, r.groups[i].cap)
			loads[i] = take
			remaining -= take
			if remaining <= 0 {
				break
			}
		}
		return loads, nil
	}
	loads, err := numopt.WaterFill(r.items(omega), r.p.LambdaRPS, waterFillTol)
	if err != nil {
		return nil, ErrInfeasible
	}
	return loads, nil
}

func (r *refSolver) powerOf(loads []float64) float64 {
	p := r.baseKW
	for i := range r.groups {
		p += r.groups[i].slope * loads[i]
	}
	return p
}

// solve runs the regime analysis of solveWith over the old layout.
func (r *refSolver) solve() (dcmodel.Solution, error) {
	if r.p.LambdaRPS > r.capSum*(1+1e-12) {
		return dcmodel.Solution{}, ErrInfeasible
	}
	var loads []float64
	if len(r.groups) == 0 {
		if r.p.LambdaRPS > 0 {
			return dcmodel.Solution{}, ErrInfeasible
		}
	} else {
		onsite := r.p.OnsiteKW
		grid, err := r.fill(r.p.We)
		if err != nil {
			return dcmodel.Solution{}, err
		}
		switch {
		case r.p.We == 0 || r.powerOf(grid) >= onsite-powerTol:
			loads = grid
		default:
			free, err := r.fill(0)
			if err != nil {
				return dcmodel.Solution{}, err
			}
			if r.powerOf(free) <= onsite+powerTol {
				loads = free
			} else {
				omega := numopt.BisectMonotone(func(w float64) float64 {
					l, ferr := r.fill(w)
					if ferr != nil {
						err = ferr
						return 0
					}
					return r.powerOf(l)
				}, onsite, 0, r.p.We, r.p.We*1e-12, 100)
				if err != nil {
					return dcmodel.Solution{}, err
				}
				if loads, err = r.fill(omega); err != nil {
					return dcmodel.Solution{}, err
				}
			}
		}
	}
	full := make([]float64, len(r.p.Cluster.Groups))
	for i := range r.groups {
		full[r.groups[i].idx] = loads[i]
	}
	sol := dcmodel.Solution{
		Speeds: append([]int(nil), r.speeds...),
		Load:   full,
	}
	sol.Value = r.p.Objective(sol.Speeds, sol.Load)
	return sol, nil
}

// TestSoAMatchesOldLayoutProperty is the randomized parity sweep: for
// random heterogeneous clusters, speed vectors, loads, weights and on-site
// supplies spanning all three regimes (grid, kink, surplus) plus the Wd=0
// degenerate case, the SoA Instance and the old-layout reference must agree
// bit-for-bit — on the load vector, the P3 objective and the resulting
// Ledger charge.
func TestSoAMatchesOldLayoutProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2013))
	cases := 0
	for trial := 0; trial < 120; trial++ {
		groups := 1 + rng.Intn(24)
		cluster := dcmodel.HeterogeneousCluster(groups*(2+rng.Intn(30)), groups)
		speeds := make([]int, groups)
		for g := range speeds {
			speeds[g] = rng.Intn(cluster.Groups[g].Type.NumSpeeds() + 1)
		}
		var capRPS float64
		for g := range speeds {
			capRPS += cluster.Gamma * cluster.Groups[g].RateAt(speeds[g])
		}
		wd := []float64{0, 0.02, 1.7}[rng.Intn(3)]
		we := []float64{0, 0.05, 3.1}[rng.Intn(3)]
		p := &dcmodel.SlotProblem{
			Cluster:   cluster,
			LambdaRPS: capRPS * rng.Float64(),
			We:        we,
			Wd:        wd,
			// Spans sub-grid, mid (kink) and above-everything supplies.
			OnsiteKW: []float64{0, 1, 20, 1e6}[rng.Intn(4)] * rng.Float64(),
		}

		in, err := NewInstance(p, speeds)
		if err != nil {
			if err == ErrInfeasible {
				continue // λ jitter above capacity; nothing to compare
			}
			t.Fatalf("trial %d: NewInstance: %v", trial, err)
		}
		got, gotErr := in.Solve()
		want, wantErr := newRefSolver(p, speeds).solve()
		if (gotErr != nil) != (wantErr != nil) {
			t.Fatalf("trial %d: SoA err %v, reference err %v", trial, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		cases++
		for g := range want.Load {
			if got.Load[g] != want.Load[g] {
				t.Fatalf("trial %d: group %d load %v (SoA) != %v (old layout)",
					trial, g, got.Load[g], want.Load[g])
			}
		}
		if got.Value != want.Value {
			t.Fatalf("trial %d: objective %v (SoA) != %v (old layout)", trial, got.Value, want.Value)
		}
		led := dcmodel.Ledger{
			PriceUSDPerKWh: 0.04 + 0.1*rng.Float64(),
			OnsiteKW:       p.OnsiteKW,
			Beta:           0.02,
			Alpha:          1,
			RECPerSlotKWh:  5,
		}
		chGot := led.Charge(cluster.FacilityPowerKW(got.Speeds, got.Load),
			cluster.DelayCost(got.Speeds, got.Load), 0)
		chWant := led.Charge(cluster.FacilityPowerKW(want.Speeds, want.Load),
			cluster.DelayCost(want.Speeds, want.Load), 0)
		if chGot != chWant {
			t.Fatalf("trial %d: ledger charge %+v (SoA) != %+v (old layout)", trial, chGot, chWant)
		}
	}
	if cases < 40 {
		t.Fatalf("only %d comparable cases out of 120 trials; generator drifted", cases)
	}
}
