package loadbalance

import (
	"math"
	"testing"

	"repro/internal/dcmodel"
	"repro/internal/stats"
)

// twoGroups builds a small two-group cluster; heterogeneous when het is true.
func twoGroups(het bool) *dcmodel.Cluster {
	a := dcmodel.Opteron()
	b := dcmodel.Opteron()
	nb := 10
	if het {
		// A slower, hungrier second type.
		for i := range b.Levels {
			b.Levels[i].RateRPS *= 0.6
			b.Levels[i].BusyKW *= 1.2
		}
		b.StaticKW *= 1.2
		b.Name = "slow"
		nb = 20
	}
	return &dcmodel.Cluster{
		Groups: []dcmodel.Group{{Type: a, N: 10}, {Type: b, N: nb}},
		Gamma:  0.95,
		PUE:    1,
	}
}

func checkFeasible(t *testing.T, p *dcmodel.SlotProblem, sol dcmodel.Solution) {
	t.Helper()
	if err := p.Cluster.CheckConfig(sol.Speeds, sol.Load); err != nil {
		t.Fatalf("infeasible solution: %v", err)
	}
	var sum float64
	for _, l := range sol.Load {
		sum += l
	}
	if math.Abs(sum-p.LambdaRPS) > 1e-4*(1+p.LambdaRPS) {
		t.Fatalf("Σload = %v, want λ = %v", sum, p.LambdaRPS)
	}
}

func TestSolveSymmetricEqualSplit(t *testing.T) {
	c := twoGroups(false)
	p := &dcmodel.SlotProblem{Cluster: c, LambdaRPS: 100, We: 0.05, Wd: 0.01}
	sol, err := Solve(p, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, p, sol)
	if math.Abs(sol.Load[0]-sol.Load[1]) > 1e-4 {
		t.Errorf("symmetric groups got asymmetric split: %v", sol.Load)
	}
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(71)
	for trial := 0; trial < 40; trial++ {
		het := trial%2 == 0
		c := twoGroups(het)
		k1 := 1 + rng.IntN(4)
		k2 := 1 + rng.IntN(4)
		cap1 := c.Gamma * c.Groups[0].RateAt(k1)
		cap2 := c.Gamma * c.Groups[1].RateAt(k2)
		lambda := rng.Uniform(1, 0.9*(cap1+cap2))
		p := &dcmodel.SlotProblem{
			Cluster:   c,
			LambdaRPS: lambda,
			We:        rng.Uniform(0, 0.3),
			Wd:        rng.Uniform(0.001, 0.05),
			OnsiteKW:  rng.Uniform(0, 6),
		}
		sol, err := Solve(p, []int{k1, k2})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkFeasible(t, p, sol)
		// Brute force over the 1-D feasible segment.
		lo := math.Max(0, lambda-cap2)
		hi := math.Min(cap1, lambda)
		best := math.Inf(1)
		const steps = 4000
		for i := 0; i <= steps; i++ {
			l1 := lo + (hi-lo)*float64(i)/steps
			v := p.Objective([]int{k1, k2}, []float64{l1, lambda - l1})
			if v < best {
				best = v
			}
		}
		if sol.Value > best*(1+1e-3)+1e-9 {
			t.Errorf("trial %d (het=%v): solver %v worse than brute force %v",
				trial, het, sol.Value, best)
		}
	}
}

func TestSolveKinkRegimePinsPowerAtOnsite(t *testing.T) {
	c := twoGroups(true)
	// Find the power span achievable at λ=120 on full speeds, then place r
	// strictly inside it so the kink regime is exercised.
	p := &dcmodel.SlotProblem{Cluster: c, LambdaRPS: 120, We: 10, Wd: 0.005}
	speeds := []int{4, 4}
	in, err := NewInstance(p, speeds)
	if err != nil {
		t.Fatal(err)
	}
	gridLoads, _ := in.fill(p.We)
	freeLoads, _ := in.fill(0)
	pGrid := in.powerOf(gridLoads)
	pFree := in.powerOf(freeLoads)
	if pFree <= pGrid {
		t.Skipf("no kink span for this instance (pFree=%v pGrid=%v)", pFree, pGrid)
	}
	p.OnsiteKW = (pGrid + pFree) / 2
	sol, err := Solve(p, speeds)
	if err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, p, sol)
	got := c.FacilityPowerKW(sol.Speeds, sol.Load)
	if math.Abs(got-p.OnsiteKW) > 1e-3*(1+p.OnsiteKW) {
		t.Errorf("kink regime power = %v, want pinned at r = %v", got, p.OnsiteKW)
	}
}

func TestSolveSurplusRegimeIgnoresElectricity(t *testing.T) {
	c := twoGroups(true)
	speeds := []int{4, 4}
	// Huge on-site supply: the electricity term vanishes and the split must
	// match the We = 0 split.
	pSurplus := &dcmodel.SlotProblem{Cluster: c, LambdaRPS: 100, We: 5, Wd: 0.01, OnsiteKW: 1e6}
	pFree := &dcmodel.SlotProblem{Cluster: c, LambdaRPS: 100, We: 0, Wd: 0.01}
	s1, err := Solve(pSurplus, speeds)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Solve(pFree, speeds)
	if err != nil {
		t.Fatal(err)
	}
	for g := range s1.Load {
		if math.Abs(s1.Load[g]-s2.Load[g]) > 1e-3 {
			t.Errorf("group %d: surplus split %v != free split %v", g, s1.Load[g], s2.Load[g])
		}
	}
}

func TestSolveInfeasible(t *testing.T) {
	c := twoGroups(false)
	p := &dcmodel.SlotProblem{Cluster: c, LambdaRPS: 1e6, We: 1, Wd: 1}
	if _, err := Solve(p, []int{4, 4}); err != ErrInfeasible {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
	// All groups off with positive load.
	p2 := &dcmodel.SlotProblem{Cluster: c, LambdaRPS: 1, We: 1, Wd: 1}
	if _, err := Solve(p2, []int{0, 0}); err != ErrInfeasible {
		t.Errorf("all-off: want ErrInfeasible, got %v", err)
	}
}

func TestSolveZeroLoad(t *testing.T) {
	c := twoGroups(false)
	p := &dcmodel.SlotProblem{Cluster: c, LambdaRPS: 0, We: 1, Wd: 0.01}
	sol, err := Solve(p, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range sol.Load {
		if l != 0 {
			t.Errorf("zero-λ load = %v", sol.Load)
		}
	}
}

func TestSolveOffGroupsGetNoLoad(t *testing.T) {
	c := twoGroups(true)
	p := &dcmodel.SlotProblem{Cluster: c, LambdaRPS: 50, We: 0.05, Wd: 0.01}
	sol, err := Solve(p, []int{4, 0})
	if err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, p, sol)
	if sol.Load[1] != 0 {
		t.Errorf("off group received load %v", sol.Load[1])
	}
}

func TestSolveBadSpeedVector(t *testing.T) {
	c := twoGroups(false)
	p := &dcmodel.SlotProblem{Cluster: c, LambdaRPS: 10, We: 1, Wd: 1}
	if _, err := Solve(p, []int{4}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Solve(p, []int{9, 4}); err == nil {
		t.Error("bad index accepted")
	}
}

func TestSolveNoDelayWeightGreedy(t *testing.T) {
	c := twoGroups(true)
	p := &dcmodel.SlotProblem{Cluster: c, LambdaRPS: 80, We: 0.05, Wd: 0}
	sol, err := Solve(p, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, p, sol)
	// Group 0 (Opteron) has the lower power slope; it must be saturated
	// before the slow group receives anything.
	cap0 := c.Gamma * c.Groups[0].RateAt(4)
	if p.LambdaRPS > cap0 {
		if math.Abs(sol.Load[0]-cap0) > 1e-6 {
			t.Errorf("cheap group not saturated: %v < %v", sol.Load[0], cap0)
		}
	} else if sol.Load[1] > 1e-9 {
		t.Errorf("expensive group loaded while cheap group has room: %v", sol.Load)
	}
}

func TestKKTEqualMarginals(t *testing.T) {
	// At an interior optimum all groups share the same marginal cost.
	c := twoGroups(true)
	p := &dcmodel.SlotProblem{Cluster: c, LambdaRPS: 100, We: 0.05, Wd: 0.01}
	speeds := []int{4, 4}
	in, err := NewInstance(p, speeds)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := in.Solve()
	if err != nil {
		t.Fatal(err)
	}
	var marginals []float64
	for i := range in.gIdx {
		l := sol.Load[in.gIdx[i]]
		if l > 1e-6 && l < in.gCap[i]-1e-6 {
			marginals = append(marginals, in.marginal(i, p.We, l))
		}
	}
	if len(marginals) < 2 {
		t.Skip("no interior pair to compare")
	}
	for i := 1; i < len(marginals); i++ {
		if math.Abs(marginals[i]-marginals[0]) > 1e-3*(1+marginals[0]) {
			t.Errorf("unequal marginals: %v", marginals)
		}
	}
}

func TestSolveManyGroupsProperty(t *testing.T) {
	rng := stats.NewRNG(1234)
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.IntN(6)
		groups := make([]dcmodel.Group, n)
		speeds := make([]int, n)
		base := dcmodel.Opteron()
		for i := range groups {
			st := base
			st.Levels = append([]dcmodel.SpeedLevel(nil), base.Levels...)
			scale := rng.Uniform(0.5, 1.5)
			for j := range st.Levels {
				st.Levels[j].RateRPS *= scale
			}
			groups[i] = dcmodel.Group{Type: st, N: 1 + rng.IntN(30)}
			speeds[i] = rng.IntN(5)
		}
		c := &dcmodel.Cluster{Groups: groups, Gamma: 0.9, PUE: 1.1}
		capSum := c.UsableCapacityRPS(speeds)
		if capSum < 1 {
			continue
		}
		p := &dcmodel.SlotProblem{
			Cluster:   c,
			LambdaRPS: rng.Uniform(0, capSum*0.98),
			We:        rng.Uniform(0, 1),
			Wd:        rng.Uniform(1e-4, 0.1),
			OnsiteKW:  rng.Uniform(0, 20),
		}
		sol, err := Solve(p, speeds)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkFeasible(t, p, sol)
		// Random feasible perturbations must never beat the solution.
		for probe := 0; probe < 30; probe++ {
			alt := append([]float64(nil), sol.Load...)
			i, j := rng.IntN(n), rng.IntN(n)
			if i == j || speeds[i] == 0 || speeds[j] == 0 {
				continue
			}
			capJ := c.Gamma * c.Groups[j].RateAt(speeds[j])
			d := rng.Uniform(0, math.Min(alt[i], capJ-alt[j]))
			alt[i] -= d
			alt[j] += d
			if p.Objective(speeds, alt) < sol.Value-1e-6*(1+sol.Value) {
				t.Fatalf("trial %d: perturbation beats solver: %v < %v",
					trial, p.Objective(speeds, alt), sol.Value)
			}
		}
	}
}
