package loadbalance

import (
	"errors"
	"math"

	"repro/internal/dcmodel"
	"repro/internal/workpool"
)

// ErrNeedsDelayWeight is returned by SolveDistributed when Wd = 0: with no
// delay term the per-group response to a price is bang-bang and the
// price-only protocol cannot break ties; use the centralized Solve instead.
var ErrNeedsDelayWeight = errors.New("loadbalance: distributed solver requires Wd > 0")

// distCoordinator drives bisection on the dual price by broadcasting
// (ω, ν) price signals to the server groups and aggregating their replies.
// Each group is an autonomous agent: it answers a price query from nothing
// but its own parameters, mirroring the dual-decomposition structure the
// paper references ([5], [27]). The agents used to be one goroutine each;
// at fleet scale (10k+ groups per site) that is 10k parked goroutines per
// solve, so a round now fans the queries across a bounded worker pool —
// every agent writes only its own reply slot, so the aggregate (summed in
// agent-index order) is identical under any schedule, including the
// sequential workers <= 1 path.
type distCoordinator struct {
	in      *Instance
	workers int       // pool width for a broadcast round; <=1 sequential
	loads   []float64 // per-agent reply: load accepted at the announced price
	rounds  int       // broadcast rounds executed (the protocol's message cost)
}

func newDistCoordinator(in *Instance, workers int) *distCoordinator {
	return &distCoordinator{
		in:      in,
		workers: workers,
		loads:   make([]float64, len(in.gIdx)),
	}
}

// round broadcasts one (ω, ν) price and gathers every agent's response into
// the coordinator's reply slots, returning their agent-index-ordered sum.
func (d *distCoordinator) round(omega, nu float64) float64 {
	d.rounds++
	in := d.in
	workpool.Fan(d.workers, len(d.loads), func(agent int) {
		d.loads[agent] = in.alloc(agent, omega, nu)
	})
	var s float64
	for _, l := range d.loads {
		s += l
	}
	return s
}

// fillInto performs the distributed water-filling for a fixed electricity
// weight: geometric bracket expansion on ν followed by bisection, each step
// one broadcast round. It implements the filler interface solveWith drives;
// dst is reused when large enough.
func (d *distCoordinator) fillInto(dst []float64, omega float64) ([]float64, error) {
	n := len(d.in.gIdx)
	loads := dst
	if cap(loads) < n {
		loads = make([]float64, n)
	}
	loads = loads[:n]
	target := d.in.prob.LambdaRPS
	if target == 0 {
		for i := range loads {
			loads[i] = 0
		}
		return loads, nil
	}
	nuLo, nuHi := 0.0, 1.0
	for iter := 0; iter < 200; iter++ {
		if d.round(omega, nuHi) >= target {
			break
		}
		nuLo = nuHi
		nuHi *= 2
	}
	solved := false
	for iter := 0; iter < 200 && nuHi-nuLo > 1e-12*(1+nuHi); iter++ {
		mid := nuLo + (nuHi-nuLo)/2
		solved = true
		if d.round(omega, mid) < target {
			nuLo = mid
		} else {
			nuHi = mid
		}
	}
	if !solved {
		d.round(omega, nuHi)
	}
	var got float64
	for i, l := range d.loads {
		loads[i] = l
		got += l
	}
	// Repair the bisection residual against the agents' γ-cap headroom.
	resid := target - got
	for pass := 0; pass < 4 && math.Abs(resid) > waterFillTol; pass++ {
		for i := range loads {
			if resid > 0 {
				delta := math.Min(d.in.gCap[i]-loads[i], resid)
				loads[i] += delta
				resid -= delta
			} else {
				delta := math.Min(loads[i], -resid)
				loads[i] -= delta
				resid += delta
			}
			if math.Abs(resid) <= waterFillTol {
				break
			}
		}
	}
	if math.Abs(resid) > 1e-3 {
		return nil, ErrInfeasible
	}
	return loads, nil
}

// SolveDistributed computes the same optimum as Solve but via the
// dual-decomposition price protocol: every server group answers price
// broadcasts from its own parameters only. The regime analysis on the [·]^+
// kink is identical to the centralized path.
func SolveDistributed(p *dcmodel.SlotProblem, speeds []int) (dcmodel.Solution, error) {
	sol, _, err := SolveDistributedCounted(p, speeds)
	return sol, err
}

// SolveDistributedCounted is SolveDistributed, additionally reporting the
// number of price broadcast rounds the dual protocol spent (bracket
// expansion plus bisection, summed over every ω the outer search tried) —
// the message cost a real deployment would pay per load split.
func SolveDistributedCounted(p *dcmodel.SlotProblem, speeds []int) (dcmodel.Solution, int, error) {
	return SolveDistributedWorkers(p, speeds, 1)
}

// SolveDistributedWorkers is SolveDistributedCounted with the agent replies
// of each broadcast round fanned across up to `workers` goroutines.
// workers <= 1 runs rounds sequentially; every width produces bit-for-bit
// the same solution and round count, since agents only ever write their own
// reply slot and the coordinator aggregates in agent-index order.
func SolveDistributedWorkers(p *dcmodel.SlotProblem, speeds []int, workers int) (dcmodel.Solution, int, error) {
	if p.Wd <= 0 {
		return dcmodel.Solution{}, 0, ErrNeedsDelayWeight
	}
	in, err := NewInstance(p, speeds)
	if err != nil {
		return dcmodel.Solution{}, 0, err
	}
	d := newDistCoordinator(in, workers)
	loads, err := in.solveWith(d)
	if err != nil {
		return dcmodel.Solution{}, d.rounds, err
	}
	full := in.expandInto(nil, loads)
	return dcmodel.Solution{
		Speeds: append([]int(nil), speeds...),
		Load:   full,
		Value:  p.Objective(speeds, full),
	}, d.rounds, nil
}
