package loadbalance

import (
	"errors"
	"math"
	"sync"

	"repro/internal/dcmodel"
)

// ErrNeedsDelayWeight is returned by SolveDistributed when Wd = 0: with no
// delay term the per-group response to a price is bang-bang and the
// price-only protocol cannot break ties; use the centralized Solve instead.
var ErrNeedsDelayWeight = errors.New("loadbalance: distributed solver requires Wd > 0")

// priceQuery is the dual-decomposition message: the coordinator announces an
// electricity weight ω and a load price ν, and the addressed server group
// answers with the load it would accept at that price together with its
// remaining γ-cap headroom.
type priceQuery struct {
	omega, nu float64
	reply     chan<- priceResponse
}

type priceResponse struct {
	agent int
	load  float64
	cap   float64
}

// agentLoop is one autonomous server group. It knows only its own
// parameters; all coordination happens through price signals, mirroring the
// dual-decomposition structure the paper references ([5], [27]).
func (in *Instance) agentLoop(agent int, queries <-chan priceQuery) {
	g := in.groups[agent]
	for q := range queries {
		q.reply <- priceResponse{
			agent: agent,
			load:  in.alloc(g, q.omega, q.nu),
			cap:   g.cap,
		}
	}
}

// distCoordinator drives bisection on the dual price by broadcasting
// price queries to agents and aggregating their responses.
type distCoordinator struct {
	in      *Instance
	queries []chan priceQuery
	wg      sync.WaitGroup
	rounds  int // broadcast rounds executed (the protocol's message cost)
}

func newDistCoordinator(in *Instance) *distCoordinator {
	d := &distCoordinator{in: in, queries: make([]chan priceQuery, len(in.groups))}
	for i := range in.groups {
		ch := make(chan priceQuery, 1)
		d.queries[i] = ch
		d.wg.Add(1)
		go func(agent int) {
			defer d.wg.Done()
			in.agentLoop(agent, ch)
		}(i)
	}
	return d
}

func (d *distCoordinator) stop() {
	for _, ch := range d.queries {
		close(ch)
	}
	d.wg.Wait()
}

// round broadcasts one (ω, ν) price and gathers every agent's response.
func (d *distCoordinator) round(omega, nu float64) []priceResponse {
	d.rounds++
	replies := make(chan priceResponse, len(d.queries))
	for _, ch := range d.queries {
		ch <- priceQuery{omega: omega, nu: nu, reply: replies}
	}
	out := make([]priceResponse, len(d.queries))
	for range d.queries {
		r := <-replies
		out[r.agent] = r
	}
	return out
}

func sumLoads(rs []priceResponse) float64 {
	var s float64
	for _, r := range rs {
		s += r.load
	}
	return s
}

// fillInto performs the distributed water-filling for a fixed electricity
// weight: geometric bracket expansion on ν followed by bisection, each step
// one broadcast round. It implements the filler interface solveWith drives;
// dst is reused when large enough.
func (d *distCoordinator) fillInto(dst []float64, omega float64) ([]float64, error) {
	loads := dst
	if cap(loads) < len(d.in.groups) {
		loads = make([]float64, len(d.in.groups))
	}
	loads = loads[:len(d.in.groups)]
	target := d.in.prob.LambdaRPS
	if target == 0 {
		for i := range loads {
			loads[i] = 0
		}
		return loads, nil
	}
	nuLo, nuHi := 0.0, 1.0
	for iter := 0; iter < 200; iter++ {
		if sumLoads(d.round(omega, nuHi)) >= target {
			break
		}
		nuLo = nuHi
		nuHi *= 2
	}
	var last []priceResponse
	for iter := 0; iter < 200 && nuHi-nuLo > 1e-12*(1+nuHi); iter++ {
		mid := nuLo + (nuHi-nuLo)/2
		last = d.round(omega, mid)
		if sumLoads(last) < target {
			nuLo = mid
		} else {
			nuHi = mid
		}
	}
	if last == nil {
		last = d.round(omega, nuHi)
	}
	var got float64
	for i, r := range last {
		loads[i] = r.load
		got += r.load
	}
	// Repair the bisection residual against the caps reported by agents.
	resid := target - got
	for pass := 0; pass < 4 && math.Abs(resid) > waterFillTol; pass++ {
		for i, r := range last {
			if resid > 0 {
				delta := math.Min(r.cap-loads[i], resid)
				loads[i] += delta
				resid -= delta
			} else {
				delta := math.Min(loads[i], -resid)
				loads[i] -= delta
				resid += delta
			}
			if math.Abs(resid) <= waterFillTol {
				break
			}
		}
	}
	if math.Abs(resid) > 1e-3 {
		return nil, ErrInfeasible
	}
	return loads, nil
}

// SolveDistributed computes the same optimum as Solve but via the
// dual-decomposition message-passing protocol: one goroutine per server
// group, coordination only through price broadcasts. The regime analysis on
// the [·]^+ kink is identical to the centralized path.
func SolveDistributed(p *dcmodel.SlotProblem, speeds []int) (dcmodel.Solution, error) {
	sol, _, err := SolveDistributedCounted(p, speeds)
	return sol, err
}

// SolveDistributedCounted is SolveDistributed, additionally reporting the
// number of price broadcast rounds the dual protocol spent (bracket
// expansion plus bisection, summed over every ω the outer search tried) —
// the message cost a real deployment would pay per load split.
func SolveDistributedCounted(p *dcmodel.SlotProblem, speeds []int) (dcmodel.Solution, int, error) {
	if p.Wd <= 0 {
		return dcmodel.Solution{}, 0, ErrNeedsDelayWeight
	}
	in, err := NewInstance(p, speeds)
	if err != nil {
		return dcmodel.Solution{}, 0, err
	}
	d := newDistCoordinator(in)
	defer d.stop()
	loads, err := in.solveWith(d)
	if err != nil {
		return dcmodel.Solution{}, d.rounds, err
	}
	full := in.expandInto(nil, loads)
	return dcmodel.Solution{
		Speeds: append([]int(nil), speeds...),
		Load:   full,
		Value:  p.Objective(speeds, full),
	}, d.rounds, nil
}
