package loadbalance

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dcmodel"
	"repro/internal/stats"
)

// incrementalCase is one problem family for the mutation property test.
type incrementalCase struct {
	name string
	prob *dcmodel.SlotProblem
}

func incrementalCases() []incrementalCase {
	paper := dcmodel.PaperCluster(12)
	het := dcmodel.HeterogeneousCluster(40, 4)
	noDelay := dcmodel.HeterogeneousCluster(20, 2)
	return []incrementalCase{
		// Moderate load, active delay term, kink reachable via OnsiteKW.
		{"paper-kink", &dcmodel.SlotProblem{
			Cluster: paper, LambdaRPS: 0.3 * paper.MaxCapacityRPS(),
			We: 0.07, Wd: 0.02, OnsiteKW: 1.5,
		}},
		// High load so random mutations routinely cross the feasibility edge.
		{"paper-tight", &dcmodel.SlotProblem{
			Cluster: paper, LambdaRPS: 0.8 * paper.MaxCapacityRPS(),
			We: 0.05, Wd: 0.01,
		}},
		// Heterogeneous server generations: distinct slopes and speed counts.
		{"hetero", &dcmodel.SlotProblem{
			Cluster: het, LambdaRPS: 0.35 * het.MaxCapacityRPS(),
			We: 0.07, Wd: 0.02, OnsiteKW: 3,
		}},
		// Wd = 0 exercises the fillNoDelay path and its cached orders.
		{"no-delay", &dcmodel.SlotProblem{
			Cluster: noDelay, LambdaRPS: 0.4 * noDelay.MaxCapacityRPS(),
			We: 0.1, Wd: 0, OnsiteKW: 4,
		}},
	}
}

// solveFresh is the reference: a from-scratch NewInstance + Solve on a copy
// of the speed vector.
func solveFresh(p *dcmodel.SlotProblem, speeds []int) (dcmodel.Solution, error) {
	in, err := NewInstance(p, speeds)
	if err != nil {
		return dcmodel.Solution{}, err
	}
	return in.Solve()
}

// requireBitEqual fails unless the persistent instance's solve reproduces
// the fresh solve bit-for-bit (same error, same Value/Speeds/Load bits).
func requireBitEqual(t *testing.T, step int, p *dcmodel.SlotProblem, in *Instance, mirror []int) {
	t.Helper()
	want, wantErr := solveFresh(p, mirror)
	var got dcmodel.Solution
	gotErr := in.SolveInto(&got)
	if (wantErr != nil) != (gotErr != nil) {
		t.Fatalf("step %d: error mismatch: fresh=%v persistent=%v (speeds %v)",
			step, wantErr, gotErr, mirror)
	}
	if wantErr != nil {
		if !errors.Is(gotErr, ErrInfeasible) || !errors.Is(wantErr, ErrInfeasible) {
			t.Fatalf("step %d: unexpected error kinds: fresh=%v persistent=%v", step, wantErr, gotErr)
		}
		return
	}
	if math.Float64bits(got.Value) != math.Float64bits(want.Value) {
		t.Fatalf("step %d: Value %v != fresh %v (speeds %v)", step, got.Value, want.Value, mirror)
	}
	if len(got.Speeds) != len(want.Speeds) || len(got.Load) != len(want.Load) {
		t.Fatalf("step %d: shape mismatch: got %d/%d want %d/%d",
			step, len(got.Speeds), len(got.Load), len(want.Speeds), len(want.Load))
	}
	for g := range want.Speeds {
		if got.Speeds[g] != want.Speeds[g] {
			t.Fatalf("step %d: Speeds[%d] = %d, fresh %d", step, g, got.Speeds[g], want.Speeds[g])
		}
		if math.Float64bits(got.Load[g]) != math.Float64bits(want.Load[g]) {
			t.Fatalf("step %d: Load[%d] = %x, fresh %x (speeds %v)",
				step, g, math.Float64bits(got.Load[g]), math.Float64bits(want.Load[g]), mirror)
		}
	}
}

// TestIncrementalMatchesFreshSolve drives a randomized SetSpeed/Revert/
// Commit sequence against one persistent Instance and checks after every
// mutation that it solves bit-for-bit identically to a fresh build of the
// same speed vector, and that O(1) Feasible agrees with the full-problem
// check.
func TestIncrementalMatchesFreshSolve(t *testing.T) {
	for _, tc := range incrementalCases() {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.prob
			n := len(p.Cluster.Groups)
			rng := stats.NewRNG(0xC0CA + uint64(n))
			speeds := make([]int, n)
			for g := range speeds {
				speeds[g] = p.Cluster.Groups[g].Type.NumSpeeds()
			}
			in, err := NewInstance(p, speeds)
			if err != nil {
				t.Fatalf("initial NewInstance: %v", err)
			}
			mirror := append([]int(nil), speeds...)
			requireBitEqual(t, -1, p, in, mirror)
			for step := 0; step < 400; step++ {
				g := rng.IntN(n)
				k := rng.IntN(p.Cluster.Groups[g].Type.NumSpeeds() + 1)
				if err := in.SetSpeed(g, k); err != nil {
					t.Fatalf("step %d: SetSpeed(%d, %d): %v", step, g, k, err)
				}
				if rng.Float64() < 0.4 {
					in.Revert()
				} else {
					mirror[g] = k
					in.Commit()
				}
				if got, want := in.Feasible(), p.Feasible(mirror); got != want {
					t.Fatalf("step %d: Feasible() = %v, full check = %v (speeds %v)",
						step, got, want, mirror)
				}
				for i, s := range in.Speeds() {
					if s != mirror[i] {
						t.Fatalf("step %d: instance speeds %v desynced from mirror %v",
							step, in.Speeds(), mirror)
					}
				}
				requireBitEqual(t, step, p, in, mirror)
			}
		})
	}
}

// TestRevertRestoresAfterFailedSolve pins that a SetSpeed whose solve fails
// (infeasible capacity) reverts to a state that still solves exactly like
// the pre-mutation instance.
func TestRevertRestoresAfterFailedSolve(t *testing.T) {
	paper := dcmodel.PaperCluster(4)
	p := &dcmodel.SlotProblem{
		Cluster: paper, LambdaRPS: 0.9 * paper.MaxCapacityRPS(),
		We: 0.05, Wd: 0.02,
	}
	speeds := make([]int, 4)
	for g := range speeds {
		speeds[g] = paper.Groups[g].Type.NumSpeeds()
	}
	in, err := NewInstance(p, speeds)
	if err != nil {
		t.Fatal(err)
	}
	var before dcmodel.Solution
	if err := in.SolveInto(&before); err != nil {
		t.Fatal(err)
	}
	// Turning a group off at 90% load must be infeasible.
	if err := in.SetSpeed(0, 0); err != nil {
		t.Fatal(err)
	}
	var during dcmodel.Solution
	if err := in.SolveInto(&during); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("SolveInto after overload = %v, want ErrInfeasible", err)
	}
	if in.Feasible() {
		t.Fatal("Feasible() = true with a group off at 90% load")
	}
	in.Revert()
	var after dcmodel.Solution
	if err := in.SolveInto(&after); err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(after.Value) != math.Float64bits(before.Value) {
		t.Fatalf("Value after revert %v != before %v", after.Value, before.Value)
	}
	for g := range before.Load {
		if math.Float64bits(after.Load[g]) != math.Float64bits(before.Load[g]) {
			t.Fatalf("Load[%d] after revert %v != before %v", g, after.Load[g], before.Load[g])
		}
	}
}

// TestSetSpeedValidation pins the argument checks.
func TestSetSpeedValidation(t *testing.T) {
	c := twoGroups(false)
	p := &dcmodel.SlotProblem{Cluster: c, LambdaRPS: 50, We: 0.05, Wd: 0.01}
	in, err := NewInstance(p, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.SetSpeed(-1, 1); err == nil {
		t.Error("SetSpeed(-1, 1) accepted")
	}
	if err := in.SetSpeed(2, 1); err == nil {
		t.Error("SetSpeed(2, 1) accepted")
	}
	if err := in.SetSpeed(0, c.Groups[0].Type.NumSpeeds()+1); err == nil {
		t.Error("SetSpeed with speed out of range accepted")
	}
	// Failed validation must leave the instance untouched.
	sol, err := in.Solve()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Solve(p, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(sol.Value) != math.Float64bits(fresh.Value) {
		t.Fatalf("instance diverged after rejected SetSpeed: %v != %v", sol.Value, fresh.Value)
	}
}
