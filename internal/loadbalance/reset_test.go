package loadbalance

import (
	"testing"

	"repro/internal/stats"
)

// TestResetMatchesFresh drives one long-lived Instance through Reset calls
// across different problems and randomized speed vectors — including Resets
// from a dirtied state (pending SetSpeed mutations) — and requires every
// re-prepared instance to solve bit-for-bit identically to a fresh
// NewInstance build. This is the invariant that lets the GSD engine pool
// recycle instances and the speculative chain re-sync worker clones.
func TestResetMatchesFresh(t *testing.T) {
	rng := stats.NewRNG(91)
	in := &Instance{}
	cases := incrementalCases()
	for trial := 0; trial < 200; trial++ {
		tc := cases[trial%len(cases)]
		n := len(tc.prob.Cluster.Groups)
		speeds := make([]int, n)
		for g := range speeds {
			speeds[g] = rng.IntN(tc.prob.Cluster.Groups[g].Type.NumSpeeds() + 1)
		}
		err := in.Reset(tc.prob, speeds)
		if _, wantErr := NewInstance(tc.prob, speeds); (err != nil) != (wantErr != nil) {
			t.Fatalf("trial %d (%s): Reset err %v, NewInstance err %v", trial, tc.name, err, wantErr)
		}
		if err != nil {
			continue
		}
		requireBitEqual(t, trial, tc.prob, in, speeds)
		// Dirty the instance before the next Reset: pending and committed
		// mutations must not leak through.
		for m := 0; m < 3; m++ {
			g := rng.IntN(n)
			k := rng.IntN(tc.prob.Cluster.Groups[g].Type.NumSpeeds() + 1)
			if err := in.SetSpeed(g, k); err != nil {
				t.Fatal(err)
			}
			if m == 1 {
				in.Commit()
			}
		}
	}
}

// TestProposalFeasibleAgreesWithSetSpeed checks the advisory estimate
// against the authoritative SetSpeed+Feasible answer on randomized
// configurations. The two can differ only within ulps of the γ bound,
// which continuous random loads never hit.
func TestProposalFeasibleAgreesWithSetSpeed(t *testing.T) {
	rng := stats.NewRNG(17)
	for _, tc := range incrementalCases() {
		n := len(tc.prob.Cluster.Groups)
		top := make([]int, n)
		for g := range top {
			top[g] = tc.prob.Cluster.Groups[g].Type.NumSpeeds()
		}
		in, err := NewInstance(tc.prob, top)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for trial := 0; trial < 400; trial++ {
			g := rng.IntN(n)
			k := rng.IntN(tc.prob.Cluster.Groups[g].Type.NumSpeeds() + 1)
			want := func() bool {
				if err := in.SetSpeed(g, k); err != nil {
					t.Fatal(err)
				}
				defer in.Revert()
				return in.Feasible()
			}()
			if got := in.ProposalFeasible(g, k); got != want {
				t.Fatalf("%s trial %d: ProposalFeasible(%d,%d) = %v, SetSpeed+Feasible = %v",
					tc.name, trial, g, k, got, want)
			}
			// Occasionally walk the base configuration so estimates are
			// exercised from many states.
			if trial%5 == 0 {
				if err := in.SetSpeed(g, k); err == nil {
					in.Commit()
				}
			}
		}
	}
}

// TestProposalFeasibleRejectsOutOfRange pins the out-of-range contract.
func TestProposalFeasibleRejectsOutOfRange(t *testing.T) {
	tc := incrementalCases()[0]
	n := len(tc.prob.Cluster.Groups)
	top := make([]int, n)
	for g := range top {
		top[g] = tc.prob.Cluster.Groups[g].Type.NumSpeeds()
	}
	in, err := NewInstance(tc.prob, top)
	if err != nil {
		t.Fatal(err)
	}
	for _, gk := range [][2]int{{-1, 0}, {n, 0}, {0, -1}, {0, tc.prob.Cluster.Groups[0].Type.NumSpeeds() + 1}} {
		if in.ProposalFeasible(gk[0], gk[1]) {
			t.Fatalf("ProposalFeasible(%d,%d) = true for out-of-range proposal", gk[0], gk[1])
		}
	}
}
