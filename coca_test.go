package coca

import (
	"math"
	"testing"
)

// TestPublicAPIQuickstart walks the facade end to end the way the README's
// quickstart does: build a calibrated scenario, run COCA and the baselines,
// and check the paper's qualitative claims hold.
func TestPublicAPIQuickstart(t *testing.T) {
	sc, refGrid, err := BuildScenario(ScenarioOptions{Slots: 14 * 24, N: 500, Seed: 2012})
	if err != nil {
		t.Fatal(err)
	}
	if refGrid <= 0 {
		t.Fatal("no reference usage")
	}

	cocaPolicy, err := NewCOCA(COCAFromScenario(sc, ConstantV(1e5, 1, sc.Slots)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, cocaPolicy)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(sc, res)
	if s.AvgHourlyCostUSD <= 0 {
		t.Fatal("degenerate cost")
	}

	un, err := Run(sc, NewUnaware(sc))
	if err != nil {
		t.Fatal(err)
	}
	us := Summarize(sc, un)
	// Unaware is the unconstrained optimum: cheapest, but violates the
	// budget by construction (budget = 92% of its usage).
	if s.AvgHourlyCostUSD < us.AvgHourlyCostUSD*(1-1e-9) {
		t.Errorf("COCA %v beat the unconstrained optimum %v", s.AvgHourlyCostUSD, us.AvgHourlyCostUSD)
	}
	if us.BudgetUsedFraction <= 1 {
		t.Errorf("unaware within budget (%v) — calibration broken", us.BudgetUsedFraction)
	}
	if s.TotalGridKWh > us.TotalGridKWh {
		t.Error("COCA used more energy than the carbon-unaware baseline")
	}
}

func TestPublicAPIGSD(t *testing.T) {
	cluster := HeterogeneousCluster(120, 6)
	we, wd := P3Weights(100, 5, 0.05, 0.02)
	prob := &SlotProblem{
		Cluster:   cluster,
		LambdaRPS: 0.4 * cluster.MaxCapacityRPS(),
		We:        we, Wd: wd,
	}
	seq, err := SolveGSD(prob, GSDOptions{Delta: 1e8, MaxIters: 800, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := SolveGSDDistributed(prob, GSDOptions{Delta: 1e8, MaxIters: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seq.Solution.Value-dist.Solution.Value) > 0.05*(1+seq.Solution.Value) {
		t.Errorf("engines disagree: %v vs %v", seq.Solution.Value, dist.Solution.Value)
	}
}

func TestPublicAPIQueueingValidation(t *testing.T) {
	// Eq. (4)'s delay model against the event-driven M/G/1/PS simulator.
	res, err := SimulateQueue(QueueConfig{
		ArrivalRPS: 5, ServiceRPS: 10,
		Service: ExponentialService(1),
		Horizon: 20000, Warmup: 1000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := AnalyticMeanJobs(5, 10)
	if math.Abs(res.MeanJobs-want) > 0.15*want {
		t.Errorf("measured %v vs analytic %v", res.MeanJobs, want)
	}
}
