// Quickstart: build a calibrated data-center scenario, run COCA for a
// simulated month, and report cost and carbon-neutrality outcomes.
//
// Usage:
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -trace-out trace.json   # then open in ui.perfetto.dev
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	coca "repro"
)

func main() {
	traceOut := flag.String("trace-out", "", "record execution spans and write Chrome trace-event JSON to this path")
	flag.Parse()
	var tracer *coca.Tracer
	if *traceOut != "" {
		tracer = coca.NewTracer()
	}
	// A 30-day scenario with a 5,000-server fleet, calibrated like the
	// paper's §5.1: on-site renewables cover ≈ 20% of consumption and the
	// carbon budget is 92% of what a carbon-unaware operator would draw
	// from the grid.
	sc, refGrid, err := coca.BuildScenario(coca.ScenarioOptions{
		Slots: 30 * 24,
		N:     5000,
		Seed:  2012,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d Opteron servers, peak workload %.0f req/s\n",
		5000, sc.Workload.Max())
	fmt.Printf("carbon-unaware reference: %.0f kWh grid draw; budget: %.0f kWh\n",
		refGrid, sc.Portfolio.BudgetKWh(sc.Slots))

	// COCA with a single cost-carbon parameter V over the whole horizon.
	// Larger V favors cost over carbon; sweep a coarse grid and keep the
	// largest V that stays carbon neutral (the paper's trial-and-error
	// tuning of §4.3).
	var s coca.Summary
	picked := false
	for _, v := range []float64{1e4, 1e5, 1e6, 3e6, 1e7} {
		policy, err := coca.NewCOCA(coca.COCAFromScenario(sc, coca.ConstantV(v, 1, sc.Slots)))
		if err != nil {
			log.Fatal(err)
		}
		res, err := coca.RunTraced(sc, policy, tracer)
		if err != nil {
			log.Fatal(err)
		}
		if sum := coca.Summarize(sc, res); sum.BudgetUsedFraction <= 1 &&
			(!picked || sum.BudgetUsedFraction > s.BudgetUsedFraction) {
			s, picked = sum, true
		}
	}
	if !picked {
		log.Fatal("no neutral V in the sweep; widen it downward")
	}
	fmt.Printf("\nCOCA results over %d hours:\n", s.Slots)
	fmt.Printf("  average hourly cost: $%.2f (electricity $%.2f, delay $%.2f)\n",
		s.AvgHourlyCostUSD, s.AvgElectricityUSD, s.AvgDelayUSD)
	fmt.Printf("  grid energy: %.0f kWh (%.1f%% of carbon budget)\n",
		s.TotalGridKWh, 100*s.BudgetUsedFraction)
	if s.BudgetUsedFraction <= 1 {
		fmt.Println("  carbon neutrality: satisfied ✓")
	} else {
		fmt.Println("  carbon neutrality: violated ✗ (lower V to tighten)")
	}

	// Compare against the carbon-unaware operator.
	un, err := coca.Run(sc, coca.NewUnaware(sc))
	if err != nil {
		log.Fatal(err)
	}
	us := coca.Summarize(sc, un)
	fmt.Printf("\ncarbon-unaware: $%.2f/h at %.1f%% of budget (violates neutrality)\n",
		us.AvgHourlyCostUSD, 100*us.BudgetUsedFraction)
	fmt.Printf("COCA pays %.1f%% over the unconstrained cost to stay neutral\n",
		100*(s.AvgHourlyCostUSD-us.AvgHourlyCostUSD)/us.AvgHourlyCostUSD)

	// Export the recorded spans as a Perfetto-loadable trace.
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %d spans to %s (open in ui.perfetto.dev)\n", tracer.Len(), *traceOut)
	}
}
