// Multi-site extension: geographic load balancing with per-site
// carbon-deficit queues. Three data centers with different electricity
// prices and renewable positions share one global workload; the split is
// chosen each hour by greedy marginal cost over the sites' P3 optima, so
// load flows toward sites that are currently cheap AND carbon-underspent.
//
// Usage:
//
//	go run ./examples/multisite
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	coca "repro"
)

func main() {
	const slots = 14 * 24
	mkSite := func(name string, priceScale, onsitePeakKW, budgetPerSlot float64, seed uint64) coca.GeoSite {
		p := coca.CAISOYear(seed)
		for i := range p.Values {
			p.Values[i] *= priceScale
		}
		onsite := coca.SolarYear(seed + 1)
		for i := range onsite.Values {
			onsite.Values[i] *= onsitePeakKW
		}
		offsite := coca.WindYear(seed + 2)
		for i := range offsite.Values {
			offsite.Values[i] *= budgetPerSlot * 0.8
		}
		return coca.GeoSite{
			Name: name, Server: coca.Opteron(), N: 400, Gamma: 0.95, PUE: 1,
			Price: p,
			Portfolio: &coca.Portfolio{
				OnsiteKW:   onsite,
				OffsiteKWh: offsite,
				RECsKWh:    budgetPerSlot * 0.6 * slots,
				Alpha:      1,
			},
		}
	}
	sites := []coca.GeoSite{
		mkSite("hydro-north", 0.6, 15, 30, 11),
		mkSite("metro-east", 1.4, 3, 20, 22),
		mkSite("desert-west", 0.9, 25, 25, 33),
	}
	sys, err := coca.NewGeoSystem(sites, 0.01, slots)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("federation: 3 sites, %0.f req/s total capacity\n\n", sys.TotalCapacityRPS())

	workload := coca.FIUYear(44).ScaledToPeak(0.5 * sys.TotalCapacityRPS())
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "hour\tλ\thydro-north\tmetro-east\tdesert-west\tq(north)\tq(east)\tq(west)")
	var total float64
	for t := 0; t < slots; t++ {
		out, err := sys.Step(workload.Values[t], 5e4)
		if err != nil {
			log.Fatal(err)
		}
		sys.Settle(out)
		total += out.TotalCostUSD
		if t%24 == 12 && t < 10*24 {
			fmt.Fprintf(w, "%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n",
				t, workload.Values[t],
				out.Sites[0].LoadRPS, out.Sites[1].LoadRPS, out.Sites[2].LoadRPS,
				sys.Queue(0), sys.Queue(1), sys.Queue(2))
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal federation cost over %d hours: $%.2f\n", slots, total)
	fmt.Println("expected pattern: the expensive metro-east site carries the least load,")
	fmt.Println("and any site whose deficit queue grows sheds load to the others.")
}
