// Online vs prediction-based energy budgeting (the paper's Fig. 3): run
// COCA and the PerfectHP heuristic — which allocates the carbon budget
// over 48-hour windows proportionally to perfectly predicted workloads —
// over the same scenario and compare cost and neutrality.
//
// Usage:
//
//	go run ./examples/prediction
package main

import (
	"fmt"
	"log"

	coca "repro"
)

func main() {
	const (
		slots = 10 * 7 * 24 // ten weeks
		fleet = 2000
	)
	sc, _, err := coca.BuildScenario(coca.ScenarioOptions{
		Slots: slots, N: fleet, Beta: 0.02, Seed: 2012,
	})
	if err != nil {
		log.Fatal(err)
	}

	// COCA tuned to the largest carbon-neutral operating point.
	var cocaSum coca.Summary
	var cocaRun *coca.RunResult
	for _, v := range []float64{1e5, 1e6, 3e6, 1e7, 3e7} {
		p, err := coca.NewCOCA(coca.COCAFromScenario(sc, coca.ConstantV(v, 1, slots)))
		if err != nil {
			log.Fatal(err)
		}
		res, err := coca.Run(sc, p)
		if err != nil {
			log.Fatal(err)
		}
		s := coca.Summarize(sc, res)
		if s.BudgetUsedFraction <= 1 &&
			(cocaRun == nil || s.BudgetUsedFraction > cocaSum.BudgetUsedFraction) {
			cocaSum, cocaRun = s, res
		}
	}
	if cocaRun == nil {
		log.Fatal("no neutral V found; widen the sweep")
	}

	php, err := coca.NewPerfectHP(sc, 48)
	if err != nil {
		log.Fatal(err)
	}
	phpRun, err := coca.Run(sc, php)
	if err != nil {
		log.Fatal(err)
	}
	phpSum := coca.Summarize(sc, phpRun)

	fmt.Printf("%-12s %14s %14s %14s %14s\n",
		"policy", "cost $/h", "electricity", "delay", "grid/budget")
	for _, row := range []struct {
		name string
		s    coca.Summary
	}{{"COCA", cocaSum}, {"PerfectHP", phpSum}} {
		fmt.Printf("%-12s %14.2f %14.2f %14.2f %14.3f\n", row.name,
			row.s.AvgHourlyCostUSD, row.s.AvgElectricityUSD,
			row.s.AvgDelayUSD, row.s.BudgetUsedFraction)
	}
	saving := 100 * (phpSum.AvgHourlyCostUSD - cocaSum.AvgHourlyCostUSD) / phpSum.AvgHourlyCostUSD
	fmt.Printf("\nCOCA cost saving vs PerfectHP: %.1f%% (paper reports > 25%% over a full year)\n", saving)

	// Monthly running-average snapshots (the Fig. 3 curves).
	fmt.Println("\nrunning average hourly cost ($):")
	fmt.Printf("%8s %10s %10s\n", "week", "COCA", "PerfectHP")
	cocaCosts, phpCosts := cocaRun.CostSeries(), phpRun.CostSeries()
	var ca, pa float64
	for t := 0; t < slots; t++ {
		ca += cocaCosts[t]
		pa += phpCosts[t]
		if (t+1)%(7*24) == 0 {
			fmt.Printf("%8d %10.2f %10.2f\n", (t+1)/(7*24),
				ca/float64(t+1), pa/float64(t+1))
		}
	}
}
