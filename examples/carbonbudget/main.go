// Carbon-budget sensitivity (the paper's Fig. 5a workload): sweep the
// carbon budget from 85% to 105% of the carbon-unaware usage and compare
// COCA (online, no future information) against the offline optimum OPT and
// the carbon-unaware lower bound.
//
// Usage:
//
//	go run ./examples/carbonbudget
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	coca "repro"
)

func main() {
	const (
		slots = 8 * 7 * 24 // eight weeks
		fleet = 2000
	)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "budget\tCOCA $/h\tOPT $/h\tunaware $/h\tCOCA/OPT\tCOCA neutral")

	for _, budget := range []float64{0.85, 0.90, 0.92, 0.95, 1.00, 1.05} {
		sc, _, err := coca.BuildScenario(coca.ScenarioOptions{
			Slots: slots, N: fleet, BudgetFrac: budget, Seed: 2012,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Tune V to the largest neutral operating point.
		var best coca.Summary
		found := false
		for _, v := range []float64{1e4, 1e5, 1e6, 3e6, 1e7, 1e8} {
			p, err := coca.NewCOCA(coca.COCAFromScenario(sc, coca.ConstantV(v, 1, slots)))
			if err != nil {
				log.Fatal(err)
			}
			res, err := coca.Run(sc, p)
			if err != nil {
				log.Fatal(err)
			}
			s := coca.Summarize(sc, res)
			if s.BudgetUsedFraction <= 1 && (!found || s.BudgetUsedFraction > best.BudgetUsedFraction) {
				best, found = s, true
			}
		}

		opt, err := coca.NewOPT(sc)
		if err != nil {
			log.Fatal(err)
		}
		optRes, err := coca.Run(sc, opt)
		if err != nil {
			log.Fatal(err)
		}
		optSum := coca.Summarize(sc, optRes)

		unRes, err := coca.Run(sc, coca.NewUnaware(sc))
		if err != nil {
			log.Fatal(err)
		}
		unSum := coca.Summarize(sc, unRes)

		fmt.Fprintf(w, "%.2f\t%.2f\t%.2f\t%.2f\t%.3f\t%v\n",
			budget, best.AvgHourlyCostUSD, optSum.AvgHourlyCostUSD,
			unSum.AvgHourlyCostUSD, best.AvgHourlyCostUSD/optSum.AvgHourlyCostUSD,
			found && best.BudgetUsedFraction <= 1)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nExpected shape (paper Fig. 5a): COCA tracks OPT within a few percent;")
	fmt.Println("tighter budgets raise both; the unaware cost is the unconstrained floor.")
}
