// Heterogeneous fleet with distributed optimization: run COCA's
// group-level controller over a mixed-generation cluster, solving each
// slot's P3 with GSD. The last slot is re-solved with the fully
// message-passing GSD engine, where every server group is an autonomous
// goroutine competing for updates with random timers and load splits are
// negotiated through dual-decomposition price signals.
//
// Usage:
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	coca "repro"
)

func main() {
	// Three server generations (old / measured Opteron / new) across 12
	// groups, 1,200 servers total.
	cluster := coca.HeterogeneousCluster(1200, 12)
	fmt.Printf("cluster: %d servers in %d groups, peak %.0f kW, capacity %.0f req/s\n\n",
		cluster.TotalServers(), len(cluster.Groups), cluster.PeakPowerKW(), cluster.MaxCapacityRPS())

	const hours = 48
	workload := coca.FIUYear(7)
	prices := coca.CAISOYear(8)
	solar := coca.SolarYear(9)
	offsite := coca.WindYear(10)

	solver := &coca.GSDSolver{Opts: coca.GSDOptions{
		Delta: 1e9, MaxIters: 1500, Seed: 42, Patience: 400,
	}}
	// A deliberately tight per-slot REC allowance (8 kWh) so the deficit
	// queue becomes active and visibly throttles electricity.
	ctrl, err := coca.NewController(cluster, 0.01, coca.ConstantV(5e4, 1, hours), 1, 8, solver)
	if err != nil {
		log.Fatal(err)
	}

	peak := 0.5 * cluster.MaxCapacityRPS()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "hour\tλ (req/s)\tpower (kW)\tgrid (kWh)\tcost ($)\tdeficit q")
	var env coca.SlotEnv
	for t := 0; t < hours; t++ {
		env = coca.SlotEnv{
			LambdaRPS:      workload.Values[t] * peak,
			OnsiteKW:       solar.Values[t] * 30,
			PriceUSDPerKWh: prices.Values[t],
		}
		out, err := ctrl.Step(env)
		if err != nil {
			log.Fatal(err)
		}
		ctrl.Settle(out, offsite.Values[t]*15)
		if t%6 == 0 {
			fmt.Fprintf(w, "%d\t%.0f\t%.1f\t%.1f\t%.2f\t%.1f\n",
				t, env.LambdaRPS, out.Cost.PowerKW, out.Cost.GridKWh,
				out.Cost.TotalUSD, ctrl.Queue())
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	// Demonstrate the message-passing engine on the final slot's problem.
	we, wd := coca.P3Weights(5e4, ctrl.Queue(), env.PriceUSDPerKWh, 0.01)
	prob := &coca.SlotProblem{
		Cluster:   cluster,
		LambdaRPS: env.LambdaRPS,
		We:        we, Wd: wd,
		OnsiteKW: env.OnsiteKW,
	}
	seq, err := coca.SolveGSD(prob, coca.GSDOptions{Delta: 1e9, MaxIters: 1200, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	dist, err := coca.SolveGSDDistributed(prob, coca.GSDOptions{Delta: 1e9, MaxIters: 300, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal slot re-solved:\n")
	fmt.Printf("  sequential GSD   objective %.3f (%d iterations)\n", seq.Solution.Value, seq.Iters)
	fmt.Printf("  distributed GSD  objective %.3f (%d iterations, goroutine per group)\n",
		dist.Solution.Value, dist.Iters)
	fmt.Printf("  gap: %.2f%%\n", 100*(dist.Solution.Value-seq.Solution.Value)/seq.Solution.Value)
}
