// Green batch scheduling: the paper isolates delay-tolerant batch
// workloads from the interactive traffic COCA manages (§2.3). This example
// makes that isolation concrete — COCA runs the interactive fleet for a
// simulated month, and a deferrable batch stream is then scheduled
// (earliest-deadline-first) onto the spare cycles of the servers COCA
// already powered on, costing only computing energy.
//
// Usage:
//
//	go run ./examples/greenbatch
package main

import (
	"fmt"
	"log"

	coca "repro"
)

func main() {
	const slots = 30 * 24
	sc, _, err := coca.BuildScenario(coca.ScenarioOptions{Slots: slots, N: 2000, Seed: 2012})
	if err != nil {
		log.Fatal(err)
	}

	policy, err := coca.NewCOCA(coca.COCAFromScenario(sc, coca.ConstantV(5e4, 1, slots)))
	if err != nil {
		log.Fatal(err)
	}
	run, err := coca.Run(sc, policy)
	if err != nil {
		log.Fatal(err)
	}
	interactive := coca.Summarize(sc, run)
	fmt.Printf("interactive fleet (COCA): $%.2f/h, %.1f%% of carbon budget\n",
		interactive.AvgHourlyCostUSD, 100*interactive.BudgetUsedFraction)

	// Headroom left on powered-on servers, in full-speed server-hours.
	spare := coca.BatchSpareServerHours(sc, run)
	var total float64
	for _, v := range spare {
		total += v
	}
	fmt.Printf("spare capacity left by COCA: %.0f server-hours over %d hours\n", total, slots)

	// A deferrable batch stream sized to half of the spare capacity, with
	// 4–24 hours of deadline slack per job.
	sched := coca.NewBatchScheduler()
	jobs := coca.BatchWorkload(7, slots, 2, total/float64(slots)/4, 4, 24)
	for _, j := range jobs {
		if err := sched.Submit(j); err != nil {
			log.Fatal(err)
		}
	}
	var served, energy float64
	for t := 0; t < slots; t++ {
		r := sched.Step(spare[t], sc.Server)
		served += r.UsedServerHours
		energy += r.EnergyKWh
	}
	_, done, missed := sched.Stats()
	fmt.Printf("\nbatch stream: %d jobs submitted\n", len(jobs))
	fmt.Printf("  served %.0f server-hours using only spare cycles\n", served)
	fmt.Printf("  completed %d, missed %d (%.1f%% on time)\n",
		done, missed, 100*float64(done)/float64(done+missed))
	fmt.Printf("  extra computing energy: %.0f kWh (%.2f%% of the interactive grid draw)\n",
		energy, 100*energy/interactive.TotalGridKWh)
}
