// Benchmarks regenerating every figure of the paper's evaluation at reduced
// scale (one bench per table/figure; see DESIGN.md §3 for the experiment
// index), plus micro-benchmarks of the hot paths. Run the full paper-scale
// reproduction with cmd/cocasim instead; these exist to keep the
// regeneration code exercised and to track performance.
package coca

import (
	"fmt"
	"testing"

	"repro/internal/batch"
	"repro/internal/dcmodel"
	"repro/internal/experiments"
	"repro/internal/geo"
	"repro/internal/gsd"
	"repro/internal/loadbalance"
	"repro/internal/lyapunov"
	"repro/internal/p3"
	"repro/internal/price"
	"repro/internal/queueing"
	"repro/internal/renewable"
	"repro/internal/sim"
	"repro/internal/simtest"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// benchConfig is the reduced scale used by the figure benches: a 4-week
// horizon over a 1,000-server fleet.
func benchConfig() experiments.Config {
	return experiments.Config{Slots: 4 * 7 * 24, N: 1000, Seed: 2012}
}

func BenchmarkFig1Traces(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2ImpactOfV(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3VsPerfectHP(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4GSD(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Sensitivity(b *testing.B) {
	cfg := benchConfig()
	cfg.Slots = 2 * 7 * 24
	cfg.N = 500
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGSD500Iters200Groups measures the paper's §5.2.3 claim: 500 GSD
// iterations with 200 groups of servers complete in under one second.
func BenchmarkGSD500Iters200Groups(b *testing.B) {
	cluster := dcmodel.PaperCluster(200)
	prob := &dcmodel.SlotProblem{
		Cluster:   cluster,
		LambdaRPS: 0.3 * cluster.MaxCapacityRPS(),
		We:        0.05,
		Wd:        0.02,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gsd.Solve(prob, gsd.Options{Delta: 1e8, MaxIters: 500, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGSDParallel measures the speculative parallel Gibbs chain on the
// same 200-group workload under a ramped δ schedule (early iterations accept
// freely and flush the speculation window; late iterations are near-greedy
// and speculate deep). Results are bit-identical at every worker count — only
// wall time moves. workers=1 is the sequential reference arm.
func BenchmarkGSDParallel(b *testing.B) {
	cluster := dcmodel.PaperCluster(200)
	prob := &dcmodel.SlotProblem{
		Cluster:   cluster,
		LambdaRPS: 0.3 * cluster.MaxCapacityRPS(),
		We:        0.05,
		Wd:        0.02,
	}
	sched := gsd.RampSchedule(1e3, 2, 25, 1e8)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := gsd.Solve(prob, gsd.Options{
					Schedule: sched, MaxIters: 500, Seed: uint64(i), Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDistributedGSD(b *testing.B) {
	cluster := dcmodel.HeterogeneousCluster(240, 12)
	prob := &dcmodel.SlotProblem{
		Cluster:   cluster,
		LambdaRPS: 0.3 * cluster.MaxCapacityRPS(),
		We:        0.05,
		Wd:        0.02,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gsd.SolveDistributed(prob, gsd.Options{Delta: 1e6, MaxIters: 100, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkYearCOCA measures one full simulated year of COCA decisions at
// the paper's 216,000-server scale.
func BenchmarkYearCOCA(b *testing.B) {
	sc, _, err := simtest.Build(simtest.Options{Slots: 8760, N: 216000, Beta: 0.02, Seed: 2012})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := NewCOCA(COCAFromScenario(sc, ConstantV(2e8, 1, sc.Slots)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(sc, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHomogeneousP3Solve(b *testing.B) {
	hp := &p3.HomogeneousProblem{
		Type: dcmodel.Opteron(), N: 216000, Gamma: 0.95, PUE: 1,
		LambdaRPS: 6e5, We: 0.07, Wd: 0.02, OnsiteKW: 3000,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hp.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadBalanceSolve200Groups(b *testing.B) {
	cluster := dcmodel.PaperCluster(200)
	speeds := make([]int, 200)
	for i := range speeds {
		speeds[i] = 1 + i%4
	}
	prob := &dcmodel.SlotProblem{
		Cluster:   cluster,
		LambdaRPS: 4e5,
		We:        0.07, Wd: 0.02, OnsiteKW: 2000,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loadbalance.Solve(prob, speeds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadSplitProposal measures the GSD inner-loop unit of work on the
// incremental hot path: one single-group speed delta applied to a persistent
// load-split instance, an allocation-free re-solve, and the rollback. This
// is what the engine pays per Gibbs proposal instead of a full
// NewInstance + Solve rebuild.
func BenchmarkLoadSplitProposal(b *testing.B) {
	cluster := dcmodel.PaperCluster(200)
	speeds := make([]int, 200)
	for i := range speeds {
		speeds[i] = 1 + i%4
	}
	prob := &dcmodel.SlotProblem{
		Cluster:   cluster,
		LambdaRPS: 4e5,
		We:        0.07, Wd: 0.02, OnsiteKW: 2000,
	}
	in, err := loadbalance.NewInstance(prob, speeds)
	if err != nil {
		b.Fatal(err)
	}
	var sol dcmodel.Solution
	if err := in.SolveInto(&sol); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := i % len(speeds)
		if err := in.SetSpeed(g, 1+(speeds[g]+i)%4); err != nil {
			b.Fatal(err)
		}
		if err := in.SolveInto(&sol); err != nil {
			b.Fatal(err)
		}
		in.Revert()
	}
}

// BenchmarkGeoStep measures the geo-federation split hot path — the
// memoized greedy marginal allocation plus the per-site operate pass — at
// two federation sizes and fan-outs. It reports the split's solve economy
// alongside wall time: p3solves/step collapses from ~Chunks·K on the naive
// loop to ~Chunks + K on the memoized path (see BenchmarkGeoStepNaive in
// internal/geo for the reference cost).
func BenchmarkGeoStep(b *testing.B) {
	for _, k := range []int{4, 16} {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("K=%d/workers=%d", k, workers), func(b *testing.B) {
				sys, err := geo.NewSystem(benchGeoSites(k, 64), 0.005, 64)
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.SetWorkers(workers); err != nil {
					b.Fatal(err)
				}
				reg := telemetry.NewRegistry()
				sys.Instrument(telemetry.NewGeoMetrics(reg, "geo"))
				lambda := 0.4 * sys.TotalCapacityRPS()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sys.Step(lambda, 120); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				snap := reg.Snapshot()
				if steps := snap.Counters["geo.steps"]; steps > 0 {
					b.ReportMetric(snap.Counters["geo.p3_solves"]/steps, "p3solves/step")
					b.ReportMetric(snap.Counters["geo.memo_hits"]/steps, "memohits/step")
				}
			})
		}
	}
}

// benchGeoSites builds a deterministic K-site federation for
// BenchmarkGeoStep: staggered price levels and on-site renewables over
// Opteron fleets.
func benchGeoSites(k, slots int) []geo.Site {
	sites := make([]geo.Site, k)
	for i := range sites {
		p := price.CAISOYear(uint64(i + 1))
		scale := 0.4 + 0.15*float64(i%5)
		for j := range p.Values {
			p.Values[j] *= scale
		}
		sites[i] = geo.Site{
			Name:   fmt.Sprintf("s%02d", i),
			Server: dcmodel.Opteron(),
			N:      60 + 10*(i%4),
			Gamma:  0.95,
			PUE:    1,
			Price:  p,
			Portfolio: &renewable.Portfolio{
				OnsiteKW:   trace.Constant("r", float64(i%3), slots),
				OffsiteKWh: trace.Constant("f", 2, slots),
				RECsKWh:    float64(slots) * 3,
				Alpha:      1,
			},
		}
	}
	return sites
}

func BenchmarkDeficitQueueUpdate(b *testing.B) {
	q := lyapunov.NewDeficitQueue(1, 100)
	for i := 0; i < b.N; i++ {
		q.Update(float64(i%1000), float64(i%700))
	}
}

func BenchmarkMG1PSQueue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := queueing.Simulate(queueing.Config{
			ArrivalRPS: 7, ServiceRPS: 10,
			Service: queueing.ExponentialService(1),
			Horizon: 2000, Warmup: 100, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Extension-study benches (see DESIGN.md §3 and EXPERIMENTS.md "beyond the
// paper" section).

func BenchmarkCappingStudy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Capping(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookaheadSweep(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.LookaheadSweep(cfg, []int{24, 168}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTariffStudy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TariffStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreenBatch(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.GreenBatch(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameResetAblation(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FrameResetAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchSchedulerStep(b *testing.B) {
	srv := dcmodel.Opteron()
	sched := batchNewLoaded(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sched.Slot() >= 5000 {
			b.StopTimer()
			sched = batchNewLoaded(5000)
			b.StartTimer()
		}
		sched.Step(3, srv)
	}
}

// batchNewLoaded builds a scheduler preloaded with a long job stream.
func batchNewLoaded(slots int) *batch.Scheduler {
	s := batch.NewScheduler()
	for _, j := range batch.Workload(1, slots, 2, 1, 2, 12) {
		if err := s.Submit(j); err != nil {
			panic(err)
		}
	}
	return s
}
