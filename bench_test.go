// Benchmarks regenerating every figure of the paper's evaluation at reduced
// scale (one bench per table/figure; see DESIGN.md §3 for the experiment
// index), plus micro-benchmarks of the hot paths. Run the full paper-scale
// reproduction with cmd/cocasim instead; these exist to keep the
// regeneration code exercised and to track performance.
package coca

import (
	"testing"

	"repro/internal/batch"
	"repro/internal/dcmodel"
	"repro/internal/experiments"
	"repro/internal/gsd"
	"repro/internal/loadbalance"
	"repro/internal/lyapunov"
	"repro/internal/p3"
	"repro/internal/queueing"
	"repro/internal/sim"
	"repro/internal/simtest"
)

// benchConfig is the reduced scale used by the figure benches: a 4-week
// horizon over a 1,000-server fleet.
func benchConfig() experiments.Config {
	return experiments.Config{Slots: 4 * 7 * 24, N: 1000, Seed: 2012}
}

func BenchmarkFig1Traces(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2ImpactOfV(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3VsPerfectHP(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4GSD(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Sensitivity(b *testing.B) {
	cfg := benchConfig()
	cfg.Slots = 2 * 7 * 24
	cfg.N = 500
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGSD500Iters200Groups measures the paper's §5.2.3 claim: 500 GSD
// iterations with 200 groups of servers complete in under one second.
func BenchmarkGSD500Iters200Groups(b *testing.B) {
	cluster := dcmodel.PaperCluster(200)
	prob := &dcmodel.SlotProblem{
		Cluster:   cluster,
		LambdaRPS: 0.3 * cluster.MaxCapacityRPS(),
		We:        0.05,
		Wd:        0.02,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gsd.Solve(prob, gsd.Options{Delta: 1e8, MaxIters: 500, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributedGSD(b *testing.B) {
	cluster := dcmodel.HeterogeneousCluster(240, 12)
	prob := &dcmodel.SlotProblem{
		Cluster:   cluster,
		LambdaRPS: 0.3 * cluster.MaxCapacityRPS(),
		We:        0.05,
		Wd:        0.02,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gsd.SolveDistributed(prob, gsd.Options{Delta: 1e6, MaxIters: 100, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkYearCOCA measures one full simulated year of COCA decisions at
// the paper's 216,000-server scale.
func BenchmarkYearCOCA(b *testing.B) {
	sc, _, err := simtest.Build(simtest.Options{Slots: 8760, N: 216000, Beta: 0.02, Seed: 2012})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := NewCOCA(COCAFromScenario(sc, ConstantV(2e8, 1, sc.Slots)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(sc, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHomogeneousP3Solve(b *testing.B) {
	hp := &p3.HomogeneousProblem{
		Type: dcmodel.Opteron(), N: 216000, Gamma: 0.95, PUE: 1,
		LambdaRPS: 6e5, We: 0.07, Wd: 0.02, OnsiteKW: 3000,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hp.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadBalanceSolve200Groups(b *testing.B) {
	cluster := dcmodel.PaperCluster(200)
	speeds := make([]int, 200)
	for i := range speeds {
		speeds[i] = 1 + i%4
	}
	prob := &dcmodel.SlotProblem{
		Cluster:   cluster,
		LambdaRPS: 4e5,
		We:        0.07, Wd: 0.02, OnsiteKW: 2000,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loadbalance.Solve(prob, speeds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadSplitProposal measures the GSD inner-loop unit of work on the
// incremental hot path: one single-group speed delta applied to a persistent
// load-split instance, an allocation-free re-solve, and the rollback. This
// is what the engine pays per Gibbs proposal instead of a full
// NewInstance + Solve rebuild.
func BenchmarkLoadSplitProposal(b *testing.B) {
	cluster := dcmodel.PaperCluster(200)
	speeds := make([]int, 200)
	for i := range speeds {
		speeds[i] = 1 + i%4
	}
	prob := &dcmodel.SlotProblem{
		Cluster:   cluster,
		LambdaRPS: 4e5,
		We:        0.07, Wd: 0.02, OnsiteKW: 2000,
	}
	in, err := loadbalance.NewInstance(prob, speeds)
	if err != nil {
		b.Fatal(err)
	}
	var sol dcmodel.Solution
	if err := in.SolveInto(&sol); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := i % len(speeds)
		if err := in.SetSpeed(g, 1+(speeds[g]+i)%4); err != nil {
			b.Fatal(err)
		}
		if err := in.SolveInto(&sol); err != nil {
			b.Fatal(err)
		}
		in.Revert()
	}
}

func BenchmarkDeficitQueueUpdate(b *testing.B) {
	q := lyapunov.NewDeficitQueue(1, 100)
	for i := 0; i < b.N; i++ {
		q.Update(float64(i%1000), float64(i%700))
	}
}

func BenchmarkMG1PSQueue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := queueing.Simulate(queueing.Config{
			ArrivalRPS: 7, ServiceRPS: 10,
			Service: queueing.ExponentialService(1),
			Horizon: 2000, Warmup: 100, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Extension-study benches (see DESIGN.md §3 and EXPERIMENTS.md "beyond the
// paper" section).

func BenchmarkCappingStudy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Capping(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookaheadSweep(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.LookaheadSweep(cfg, []int{24, 168}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTariffStudy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TariffStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreenBatch(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.GreenBatch(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameResetAblation(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FrameResetAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchSchedulerStep(b *testing.B) {
	srv := dcmodel.Opteron()
	sched := batchNewLoaded(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sched.Slot() >= 5000 {
			b.StopTimer()
			sched = batchNewLoaded(5000)
			b.StartTimer()
		}
		sched.Step(3, srv)
	}
}

// batchNewLoaded builds a scheduler preloaded with a long job stream.
func batchNewLoaded(slots int) *batch.Scheduler {
	s := batch.NewScheduler()
	for _, j := range batch.Workload(1, slots, 2, 1, 2, 12) {
		if err := s.Submit(j); err != nil {
			panic(err)
		}
	}
	return s
}
