// Package coca is a Go reproduction of "COCA: Online Distributed Resource
// Management for Cost Minimization and Carbon Neutrality in Data Centers"
// (Ren & He, SC'13).
//
// COCA minimizes a data center's operational cost — electricity plus a
// convex delay cost — while keeping its long-term grid-electricity usage
// within a renewable budget (off-site power purchasing agreements plus
// renewable energy credits), with no long-term future information. The
// algorithm maintains a virtual carbon-deficit queue (Lyapunov
// drift-plus-penalty) whose length is added to the electricity price in a
// per-slot optimization P3 over discrete per-server DVFS speeds and the
// load split across servers. P3 is solved distributedly by GSD, a Gibbs
// sampling procedure in which each server autonomously explores speeds.
//
// This package is the public facade; it re-exports the pieces a downstream
// user needs:
//
//   - the data-center model (server types, clusters, power and delay costs),
//   - trace synthesis for workloads, renewables and electricity prices,
//   - the COCA policy and group-level controller,
//   - the GSD distributed P3 solver and the exact reference solvers,
//   - baselines (carbon-unaware, offline OPT, PerfectHP, T-step lookahead),
//   - the discrete-time simulation engine and scenario builder, and
//   - drivers that regenerate every figure of the paper's evaluation.
//
// See the examples/ directory for runnable end-to-end programs and
// DESIGN.md / EXPERIMENTS.md for the reproduction methodology and measured
// results.
package coca
