package coca

import (
	"io"
	"net"
	"net/http"

	"repro/internal/baseline"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/dcmodel"
	"repro/internal/experiments"
	"repro/internal/geo"
	"repro/internal/gsd"
	"repro/internal/lyapunov"
	"repro/internal/p3"
	"repro/internal/predict"
	"repro/internal/price"
	"repro/internal/queueing"
	"repro/internal/renewable"
	"repro/internal/reqsim"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/simtest"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
	"repro/internal/trace"
)

// Data-center model (paper §2).
type (
	// ServerType is a server model with discrete DVFS speed levels.
	ServerType = dcmodel.ServerType
	// SpeedLevel is one DVFS operating point.
	SpeedLevel = dcmodel.SpeedLevel
	// Group is a batch of identical servers sharing one speed decision.
	Group = dcmodel.Group
	// Cluster is a data center: groups plus the γ utilization cap and PUE.
	Cluster = dcmodel.Cluster
	// SlotProblem is the per-slot optimization P3 in weight form.
	SlotProblem = dcmodel.SlotProblem
	// Solution is a solved slot configuration.
	Solution = dcmodel.Solution
	// CostParams prices a configuration (w(t), r(t), β).
	CostParams = dcmodel.CostParams
	// Ledger is the shared slot-cost kernel: every execution path (the sim
	// engine, the controller, the multi-site federation, the baseline
	// planners) charges slots through it.
	Ledger = dcmodel.Ledger
	// SlotCharge is a Ledger's fully priced slot outcome.
	SlotCharge = dcmodel.SlotCharge
	// CostBreakdown decomposes a slot's cost (same type as SlotCharge).
	CostBreakdown = dcmodel.CostBreakdown
	// Tariff generalizes the electricity cost to convex nonlinear pricing
	// (§2.1 extension).
	Tariff = dcmodel.Tariff
	// FlatTariff is the paper's default linear tariff.
	FlatTariff = dcmodel.FlatTariff
	// Tier is one block of an inclining-block tariff.
	Tier = dcmodel.Tier
	// TieredTariff is a convex inclining-block tariff.
	TieredTariff = dcmodel.TieredTariff
)

// NewTieredTariff validates and builds an inclining-block tariff.
func NewTieredTariff(tiers []Tier) (*TieredTariff, error) { return dcmodel.NewTieredTariff(tiers) }

// Opteron returns the paper's measured quad-core AMD Opteron 2380 profile.
func Opteron() ServerType { return dcmodel.Opteron() }

// PaperCluster returns the paper's 216,000-server deployment in the given
// number of homogeneous groups.
func PaperCluster(numGroups int) *Cluster { return dcmodel.PaperCluster(numGroups) }

// HeterogeneousCluster returns a mixed-generation fleet (§2.1 motivates
// heterogeneity by differing purchase dates).
func HeterogeneousCluster(totalServers, numGroups int) *Cluster {
	return dcmodel.HeterogeneousCluster(totalServers, numGroups)
}

// P3Weights maps (V, q, w, β) to the P3 objective weights of Eq. (16).
func P3Weights(v, q, priceUSDPerKWh, beta float64) (we, wd float64) {
	return dcmodel.P3Weights(v, q, priceUSDPerKWh, beta)
}

// Traces (paper §5.1).
type Trace = trace.Trace

// FIUYear synthesizes the FIU-like yearly workload trace (normalized).
func FIUYear(seed uint64) *Trace { return trace.FIUYear(seed) }

// MSRYear synthesizes the MSR-like yearly workload trace with ±noiseFrac
// per-hour noise (the paper uses 0.4).
func MSRYear(seed uint64, noiseFrac float64) *Trace { return trace.MSRYear(seed, noiseFrac) }

// CAISOYear synthesizes one year of hourly electricity prices in $/kWh.
func CAISOYear(seed uint64) *Trace { return price.CAISOYear(seed) }

// SolarYear and WindYear synthesize normalized renewable-generation traces.
func SolarYear(seed uint64) *Trace { return renewable.SolarYear(seed) }

// WindYear synthesizes a normalized wind-farm output trace.
func WindYear(seed uint64) *Trace { return renewable.WindYear(seed) }

// Portfolio is a renewable position: on-site r(t), off-site f(t), RECs Z
// and the capping aggressiveness α of Eq. (10).
type Portfolio = renewable.Portfolio

// COCA (paper §4).
type (
	// COCAConfig parameterizes the homogeneous-fleet COCA policy.
	COCAConfig = core.Config
	// COCA is the paper's Algorithm 1 as a simulation policy.
	COCA = core.Policy
	// Controller is the group-level COCA loop for heterogeneous clusters.
	Controller = core.Controller
	// SlotEnv is one slot's environment for the controller.
	SlotEnv = core.SlotEnv
	// SlotOutcome is the controller's record of one operated slot.
	SlotOutcome = core.SlotOutcome
	// VSchedule fixes frames and the per-frame cost-carbon parameters V_r.
	VSchedule = lyapunov.VSchedule
	// DeficitQueue is the virtual carbon-deficit queue of Eq. (17).
	DeficitQueue = lyapunov.DeficitQueue
)

// NewCOCA builds the COCA policy.
func NewCOCA(cfg COCAConfig) (*COCA, error) { return core.New(cfg) }

// COCAFromScenario derives a COCA config from a scenario and a V schedule.
func COCAFromScenario(sc *Scenario, sched VSchedule) COCAConfig {
	return core.FromScenario(sc, sched)
}

// NewController builds the group-level COCA controller around any P3 solver.
func NewController(cluster *Cluster, beta float64, sched VSchedule, alpha, recPerSlotKWh float64, solver P3Solver) (*Controller, error) {
	return core.NewController(cluster, beta, sched, alpha, recPerSlotKWh, solver)
}

// ConstantV returns a single-V schedule over the given frames × slots.
func ConstantV(v float64, frames, t int) VSchedule { return lyapunov.ConstantV(v, frames, t) }

// NewDeficitQueue builds the Eq. (17) carbon-deficit queue with capping
// aggressiveness alpha and per-slot REC allowance z.
func NewDeficitQueue(alpha, recPerSlotKWh float64) *DeficitQueue {
	return lyapunov.NewDeficitQueue(alpha, recPerSlotKWh)
}

// P3 solvers (paper §4.2).
type (
	// P3Solver solves one slot's P3 instance.
	P3Solver = p3.Solver
	// GSDOptions configures the Gibbs-sampling distributed optimizer.
	GSDOptions = gsd.Options
	// GSDResult is a GSD run outcome.
	GSDResult = gsd.Result
	// GSDSolver adapts GSD to the P3Solver interface.
	GSDSolver = gsd.Solver
)

// SolveGSD runs the sequential GSD engine (Algorithm 2).
func SolveGSD(p *SlotProblem, opts GSDOptions) (GSDResult, error) { return gsd.Solve(p, opts) }

// SolveGSDDistributed runs GSD as a goroutine-per-group message-passing
// system with random-timer competition.
func SolveGSDDistributed(p *SlotProblem, opts GSDOptions) (GSDResult, error) {
	return gsd.SolveDistributed(p, opts)
}

// EnumerateP3 exhaustively solves small P3 instances (test oracle).
func EnumerateP3(p *SlotProblem) (Solution, error) { return p3.Enumerate(p) }

// Simulation engine (paper §5).
type (
	// Scenario bundles fleet, traces, renewable portfolio and horizon.
	Scenario = sim.Scenario
	// Policy is a per-slot decision maker driven by the engine.
	Policy = sim.Policy
	// Engine is the resumable step-wise slot executor behind Run: it
	// exposes Step/Done/Result plus per-slot observer callbacks.
	Engine = sim.Engine
	// Observer is a per-slot instrumentation hook receiving each operated
	// slot's record.
	Observer = sim.Observer
	// SlotRecord is one operated slot's full accounting.
	SlotRecord = sim.SlotRecord
	// RunResult is a completed simulation.
	RunResult = sim.Result
	// Summary aggregates a run against the carbon budget.
	Summary = sim.Summary
	// ScenarioOptions tunes the calibrated scenario builder.
	ScenarioOptions = simtest.Options
)

// Run drives a policy over a scenario.
func Run(sc *Scenario, p Policy) (*RunResult, error) { return sim.Run(sc, p) }

// RunObserved is Run with per-slot instrumentation hooks.
func RunObserved(sc *Scenario, p Policy, observers ...Observer) (*RunResult, error) {
	return sim.RunObserved(sc, p, observers...)
}

// NewEngine prepares a resumable step-wise run of a policy over a
// scenario; step it with Engine.Step until Engine.Done.
func NewEngine(sc *Scenario, p Policy, observers ...Observer) (*Engine, error) {
	return sim.NewEngine(sc, p, observers...)
}

// Summarize aggregates a run.
func Summarize(sc *Scenario, res *RunResult) Summary { return sim.Summarize(sc, res) }

// SummarizeWithTrueUp additionally prices any budget shortfall as an
// end-of-period REC purchase (§4.3).
func SummarizeWithTrueUp(sc *Scenario, res *RunResult, recPriceUSDPerKWh float64) Summary {
	return sim.SummarizeWithTrueUp(sc, res, recPriceUSDPerKWh)
}

// BuildScenario constructs a calibrated scenario following the paper's
// §5.1 pipeline (unaware reference → on-site scaling → budget sizing). It
// returns the scenario and the carbon-unaware reference grid usage in kWh.
func BuildScenario(o ScenarioOptions) (*Scenario, float64, error) { return simtest.Build(o) }

// Baselines (paper §5.2).
type (
	// Unaware is the carbon-unaware instantaneous cost minimizer.
	Unaware = baseline.Unaware
	// OPT is the optimal offline algorithm (Lagrangian dual).
	OPT = baseline.OPT
	// PerfectHP is the 48-hour prediction heuristic of §5.2.2.
	PerfectHP = baseline.PerfectHP
	// Lookahead is the T-step lookahead benchmark P2 of §3.2.
	Lookahead = baseline.Lookahead
)

// NewUnaware builds the carbon-unaware baseline.
func NewUnaware(sc *Scenario) *Unaware { return baseline.NewUnaware(sc) }

// NewOPT plans the offline optimum for the scenario's budget.
func NewOPT(sc *Scenario) (*OPT, error) { return baseline.NewOPT(sc) }

// NewPerfectHP plans the prediction-based heuristic with the given
// prediction window in hours (the paper uses 48).
func NewPerfectHP(sc *Scenario, frameHours int) (*PerfectHP, error) {
	return baseline.NewPerfectHP(sc, frameHours)
}

// NewLookahead plans the T-step lookahead benchmark.
func NewLookahead(sc *Scenario, T int) (*Lookahead, error) { return baseline.NewLookahead(sc, T) }

// Experiments (paper §5): drivers regenerating every figure.
type ExperimentConfig = experiments.Config

// DefaultExperiments returns the paper-scale experiment configuration.
func DefaultExperiments() ExperimentConfig { return experiments.Default() }

// Batch workloads (§2.3 isolation): a deferrable-job queue scheduled EDF
// onto the spare cycles of servers the interactive policy powered on.
type (
	// BatchJob is one deferrable batch request.
	BatchJob = batch.Job
	// BatchScheduler runs EDF over per-slot spare capacity.
	BatchScheduler = batch.Scheduler
	// BatchStepResult reports one slot of batch scheduling.
	BatchStepResult = batch.StepResult
)

// NewBatchScheduler returns an empty batch scheduler starting at slot 0.
func NewBatchScheduler() *BatchScheduler { return batch.NewScheduler() }

// BatchSpareServerHours derives the per-slot spare capacity a run left on
// its powered-on servers, in full-speed server-hours.
func BatchSpareServerHours(sc *Scenario, res *RunResult) []float64 {
	return batch.SpareServerHours(sc, res)
}

// BatchWorkload synthesizes a deterministic deferrable-job stream.
func BatchWorkload(seed uint64, slots int, jobsPerSlot, meanSizeServerHours float64, minSlack, maxSlack int) []BatchJob {
	return batch.Workload(seed, slots, jobsPerSlot, meanSizeServerHours, minSlack, maxSlack)
}

// Geographic load balancing (multi-site extension; the setting of the
// paper's refs [21][29][32]).
type (
	// GeoSite is one data center in a federation.
	GeoSite = geo.Site
	// GeoSystem is a federation with per-site carbon-deficit queues.
	GeoSystem = geo.System
	// GeoStepOutcome is one stepped federation slot.
	GeoStepOutcome = geo.StepOutcome
)

// NewGeoSystem assembles a multi-site federation.
func NewGeoSystem(sites []GeoSite, beta float64, slots int) (*GeoSystem, error) {
	return geo.NewSystem(sites, beta, slots)
}

// Workload forecasting (for prediction-based budgeting studies).
type (
	// Forecaster produces hourly workload forecasts.
	Forecaster = predict.Forecaster
	// SeasonalNaive forecasts with the value one period earlier.
	SeasonalNaive = predict.SeasonalNaive
	// ProfileEWMA smooths an hour-of-week profile.
	ProfileEWMA = predict.ProfileEWMA
	// NoisyOracle is the truth perturbed by bounded uniform noise.
	NoisyOracle = predict.NoisyOracle
)

// ForecastMAPE returns the mean absolute percentage error of a forecast.
func ForecastMAPE(truth, forecast *Trace) float64 { return predict.MAPE(truth, forecast) }

// NewPerfectHPWithForecast builds the prediction-based heuristic with an
// arbitrary (possibly imperfect) workload forecast driving its caps.
func NewPerfectHPWithForecast(sc *Scenario, frameHours int, forecast *Trace) (*PerfectHP, error) {
	return baseline.NewPerfectHPWithForecast(sc, frameHours, forecast)
}

// Telemetry (run instrumentation): a lightweight metrics registry the
// engine, the GSD solver, the experiment pool and the cocasim CLI all feed.
type (
	// TelemetryRegistry holds named counters, gauges and histograms.
	TelemetryRegistry = telemetry.Registry
	// RunMetrics instruments a stream of settled simulation slots.
	RunMetrics = telemetry.RunMetrics
	// SolveMetrics instruments a P3 solver (iterations, acceptances,
	// patience exits, cold fallbacks, per-solve wall time).
	SolveMetrics = telemetry.SolveMetrics
	// PoolMetrics instruments the experiment worker pool.
	PoolMetrics = telemetry.PoolMetrics
	// SlotStreamer writes one NDJSON record per settled slot.
	SlotStreamer = telemetry.SlotStreamer
	// LabeledCounter is a counter vector keyed by label tuples
	// (e.g. per-site series rendered as name{site="…"} on /metrics).
	LabeledCounter = telemetry.LabeledCounter
	// LabeledGauge is a gauge vector keyed by label tuples.
	LabeledGauge = telemetry.LabeledGauge
	// LabeledHistogram is a histogram vector keyed by label tuples.
	LabeledHistogram = telemetry.LabeledHistogram
	// FleetMetrics instruments a geo fleet run with site-labeled series;
	// attach with geo.Fleet.Instrument.
	FleetMetrics = telemetry.FleetMetrics
	// RuntimeMetrics is the Go runtime collector (goroutines, heap, GC),
	// refreshed on every registry scrape.
	RuntimeMetrics = telemetry.RuntimeMetrics
)

// NewTelemetryRegistry returns an empty metrics registry.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// NewRunMetrics registers run instruments under prefix; attach
// RunMetrics.Observer to an Engine to feed them.
func NewRunMetrics(r *TelemetryRegistry, prefix string) *RunMetrics {
	return telemetry.NewRunMetrics(r, prefix)
}

// NewSolveMetrics registers solver instruments under prefix; set them as
// GSDOptions.Metrics.
func NewSolveMetrics(r *TelemetryRegistry, prefix string) *SolveMetrics {
	return telemetry.NewSolveMetrics(r, prefix)
}

// NewPoolMetrics registers worker-pool instruments under prefix.
func NewPoolMetrics(r *TelemetryRegistry, prefix string) *PoolMetrics {
	return telemetry.NewPoolMetrics(r, prefix)
}

// NewSlotStreamer streams settled slots as NDJSON to w; attach
// SlotStreamer.Observer to an Engine.
func NewSlotStreamer(w io.Writer) *SlotStreamer { return telemetry.NewSlotStreamer(w) }

// NewGeoMetrics registers federation instruments under prefix; attach
// them with GeoSystem.Instrument.
func NewGeoMetrics(r *TelemetryRegistry, prefix string) *GeoMetrics {
	return telemetry.NewGeoMetrics(r, prefix)
}

// NewBatchMetrics registers batch-scheduler instruments under prefix;
// attach them with BatchScheduler.Instrument.
func NewBatchMetrics(r *TelemetryRegistry, prefix string) *BatchMetrics {
	return telemetry.NewBatchMetrics(r, prefix)
}

// NewFleetMetrics registers fleet instruments (site-labeled) under
// prefix; attach them with geo.Fleet.Instrument.
func NewFleetMetrics(r *TelemetryRegistry, prefix string) *FleetMetrics {
	return telemetry.NewFleetMetrics(r, prefix)
}

// NewRuntimeMetrics registers the Go runtime collector under prefix and
// hooks it into the registry's scrape path, so /metrics carries process
// health next to the controller series.
func NewRuntimeMetrics(r *TelemetryRegistry, prefix string) *RuntimeMetrics {
	return telemetry.NewRuntimeMetrics(r, prefix)
}

// ServeTelemetry serves the registry over HTTP (/metrics, /spans,
// /debug/vars, /debug/pprof) on addr and returns the bound listener
// address. tr may be nil when no span tracing is active. Callers own the
// server: Shutdown (or Close) it when the run ends to release the
// listener.
func ServeTelemetry(addr string, r *TelemetryRegistry, tr *Tracer) (*http.Server, net.Addr, error) {
	return telemetry.Serve(addr, r, tr)
}

// Span tracing: the execution-span half of the observability layer. Note
// the naming — Trace is the *time-series* type (λ(t), w(t), r(t)), while
// Tracer/Span record *execution* spans in the Chrome trace-event sense;
// see repro/internal/telemetry/span for the full story.
type (
	// Tracer records execution spans; nil means tracing disabled and is
	// safe everywhere a *Tracer is accepted.
	Tracer = span.Tracer
	// Span is one timed, named, attributed interval.
	Span = span.Span
	// SpanAttr is a typed key/value attribute on a span.
	SpanAttr = span.Attr
	// SpanSummary is a tracer buffer overview (also served on /spans).
	SpanSummary = span.Summary
	// GeoMetrics instruments a geo federation run per site.
	GeoMetrics = telemetry.GeoMetrics
	// BatchMetrics instruments the batch-job scheduler.
	BatchMetrics = telemetry.BatchMetrics
)

// NewTracer returns an enabled span tracer; export it with
// WriteChromeTrace (Perfetto / chrome://tracing) or WriteNDJSON.
func NewTracer() *Tracer { return span.NewTracer() }

// Span attribute constructors.
func SpanStr(key, v string) SpanAttr           { return span.Str(key, v) }
func SpanInt(key string, v int) SpanAttr       { return span.Int(key, v) }
func SpanFloat(key string, v float64) SpanAttr { return span.Float(key, v) }
func SpanBool(key string, v bool) SpanAttr     { return span.Bool(key, v) }

// RunTraced is RunObserved with a span tracer attached to the engine:
// each slot records a sim.slot span with decide/operate/observe children,
// and tracer-aware layers (a GSDSolver with GSDOptions.Tracer set) nest
// their solve spans underneath.
func RunTraced(sc *Scenario, p Policy, tr *Tracer, observers ...Observer) (*RunResult, error) {
	return sim.RunTraced(sc, p, tr, observers...)
}

// Queueing validation (paper Eq. 4).
type (
	// QueueConfig configures the event-driven M/G/1/PS simulator.
	QueueConfig = queueing.Config
	// QueueResult summarizes a queueing run.
	QueueResult = queueing.Result
)

// ServiceDist samples i.i.d. service requirements for the queueing
// simulator. Construct values with ExponentialService,
// DeterministicService or HyperexpService.
type ServiceDist = queueing.ServiceDist

// ExponentialService returns an exponential requirement distribution.
func ExponentialService(mean float64) ServiceDist { return queueing.ExponentialService(mean) }

// DeterministicService returns a constant requirement.
func DeterministicService(mean float64) ServiceDist { return queueing.DeterministicService(mean) }

// HyperexpService returns a high-variance two-phase requirement.
func HyperexpService(mean, p float64) ServiceDist { return queueing.HyperexpService(mean, p) }

// SimulateQueue runs the event-driven M/G/1/PS simulation.
func SimulateQueue(cfg QueueConfig) (QueueResult, error) { return queueing.Simulate(cfg) }

// AnalyticMeanJobs is the M/G/1/PS prediction λ/(x−λ) behind Eq. (4).
func AnalyticMeanJobs(arrivalRPS, serviceRPS float64) float64 {
	return queueing.AnalyticMeanJobs(arrivalRPS, serviceRPS)
}

// Request-level engine (internal/reqsim): the high-throughput sharded
// M/G/1/PS simulator and its slot-pipeline replay hooks. Unlike the
// reference queueing simulator above — which it matches bit for bit on
// identical seeds — it recycles every slab across runs (zero steady-state
// allocations) and fans shards over a worker pool with results invariant
// to the worker count.
type (
	// ReqsimConfig configures one request-level simulation.
	ReqsimConfig = reqsim.Config
	// ReqsimResult summarizes a request-level run (journey counters plus
	// exact P50/P95/P99 response-time percentiles).
	ReqsimResult = reqsim.Result
	// ReqsimEngine is a reusable zero-steady-state-allocation simulator.
	ReqsimEngine = reqsim.Engine
	// ReqsimPool fans independent shards over workers and merges
	// deterministically in shard order.
	ReqsimPool = reqsim.Pool
	// ReqsimServiceSampler is a closure-free service distribution; build
	// with the reqsim constructors to add the heavy-tailed Pareto arm.
	ReqsimServiceSampler = reqsim.ServiceSampler
	// ReplayOptions configures a slot or fleet replayer.
	ReplayOptions = reqsim.ReplayOptions
	// ReplayReport aggregates empirical-vs-analytic delay error over a run.
	ReplayReport = reqsim.ReplayReport
	// SlotReplayer re-simulates each settled slot's (λ, x) at request
	// granularity from a sim.Observer hook.
	SlotReplayer = reqsim.SlotReplayer
	// FleetReplayer does the same per site from a geo settle hook.
	FleetReplayer = reqsim.FleetReplayer
)

// NewReqsimEngine returns a reusable request-level simulator.
func NewReqsimEngine() *ReqsimEngine { return reqsim.NewEngine() }

// NewReqsimPool returns a sharded runner over the given worker count.
func NewReqsimPool(workers int) *ReqsimPool { return reqsim.NewPool(workers) }

// SimulateRequests runs one request-level simulation on a fresh engine.
func SimulateRequests(cfg ReqsimConfig) (ReqsimResult, error) { return reqsim.Simulate(cfg) }

// ParetoService returns a heavy-tailed Pareto requirement distribution
// (alpha > 1) for the arm where the analytic model's insensitivity
// argument converges only slowly.
func ParetoService(mean, alpha float64) ReqsimServiceSampler {
	return reqsim.ParetoService(mean, alpha)
}

// NewSlotReplayer wires request-level replay into a sim run: pass its
// Observer to RunObserved/RunTraced.
func NewSlotReplayer(server ServerType, opts ReplayOptions) *SlotReplayer {
	return reqsim.NewSlotReplayer(server, opts)
}

// NewFleetReplayer wires request-level replay into a geo.Fleet run: pass
// its Observer to Fleet.SetSettleObserver.
func NewFleetReplayer(siteNames []string, opts ReplayOptions) *FleetReplayer {
	return reqsim.NewFleetReplayer(siteNames, opts)
}

// Control plane (the cocad daemon's library surface): the controller as a
// long-running service over streaming observations, with versioned
// checkpoint/restore of every piece of cross-slot state.
type (
	// ControlService wraps a Controller in a slot loop with streaming
	// ingest, an FNV-1a state-hash chain and checkpoint/restore.
	ControlService = serve.Service
	// ControlSlotInput is one slot's observations on the wire.
	ControlSlotInput = serve.SlotInput
	// ControlDecision is the service's answer for one ingested slot.
	ControlDecision = serve.Decision
	// ControlState is the service's queryable running state.
	ControlState = serve.State
	// ControlMetrics instruments a ControlService.
	ControlMetrics = serve.Metrics
	// ServiceCheckpoint snapshots a ControlService (controller included).
	ServiceCheckpoint = serve.Checkpoint
	// ControllerCheckpoint snapshots a Controller: slot cursor, switching
	// anchor, deficit queue and the solver's opaque cross-slot state.
	ControllerCheckpoint = core.ControllerCheckpoint
	// PolicyCheckpoint snapshots the homogeneous COCA policy.
	PolicyCheckpoint = core.PolicyCheckpoint
	// EngineCheckpoint snapshots a sim Engine mid-run.
	EngineCheckpoint = sim.EngineCheckpoint
	// QueueCheckpoint snapshots a DeficitQueue.
	QueueCheckpoint = lyapunov.QueueCheckpoint
	// GSDSolverCheckpoint snapshots a GSDSolver's advancing seed and
	// warm-start vector.
	GSDSolverCheckpoint = gsd.SolverCheckpoint
	// SolverState is the opaque checkpoint interface a P3 solver may
	// implement to ride along in ControllerCheckpoints.
	SolverState = core.SolverState
)

// NewControlService wraps a controller in a slot-loop service. The
// controller must not be stepped by anyone else afterwards.
func NewControlService(ctrl *Controller) *ControlService { return serve.New(ctrl) }

// NewControlMetrics registers control-plane instruments under prefix;
// attach them with ControlService.Instrument.
func NewControlMetrics(r *TelemetryRegistry, prefix string) *ControlMetrics {
	return serve.NewMetrics(r, prefix)
}

// SyntheticSlots synthesizes a deterministic, position-addressable
// observation stream (cocad's -emit-slots mode).
func SyntheticSlots(seed uint64, start, count int, peakRPS, onsitePeakKW, offsiteMeanKWh float64) []ControlSlotInput {
	return serve.SyntheticSlots(seed, start, count, peakRPS, onsitePeakKW, offsiteMeanKWh)
}
