package coca_test

import (
	"fmt"

	coca "repro"
)

// ExampleNewCOCA runs COCA over a two-week calibrated scenario and checks
// carbon neutrality — the library's core loop in a dozen lines.
func ExampleNewCOCA() {
	sc, _, err := coca.BuildScenario(coca.ScenarioOptions{Slots: 14 * 24, N: 500, Seed: 2012})
	if err != nil {
		panic(err)
	}
	policy, err := coca.NewCOCA(coca.COCAFromScenario(sc, coca.ConstantV(1e3, 1, sc.Slots)))
	if err != nil {
		panic(err)
	}
	res, err := coca.Run(sc, policy)
	if err != nil {
		panic(err)
	}
	s := coca.Summarize(sc, res)
	fmt.Printf("carbon neutral: %v\n", s.BudgetUsedFraction <= 1)
	// Output:
	// carbon neutral: true
}

// ExampleSolveGSD solves one P3 instance with the paper's distributed
// Gibbs-sampling optimizer and verifies it matches exhaustive enumeration.
func ExampleSolveGSD() {
	cluster := &coca.Cluster{
		Groups: []coca.Group{
			{Type: coca.Opteron(), N: 4},
			{Type: coca.Opteron(), N: 4},
		},
		Gamma: 0.95, PUE: 1,
	}
	prob := &coca.SlotProblem{
		Cluster:   cluster,
		LambdaRPS: 30,
		We:        0.05, Wd: 0.01,
	}
	exact, err := coca.EnumerateP3(prob)
	if err != nil {
		panic(err)
	}
	res, err := coca.SolveGSD(prob, coca.GSDOptions{Delta: 1e6, MaxIters: 2000, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("GSD within 1%% of optimum: %v\n", res.Solution.Value <= exact.Value*1.01)
	// Output:
	// GSD within 1% of optimum: true
}

// ExampleSimulateQueue validates the paper's Eq. (4) delay model against
// the event-driven M/G/1/PS simulator at 50% utilization.
func ExampleSimulateQueue() {
	res, err := coca.SimulateQueue(coca.QueueConfig{
		ArrivalRPS: 5, ServiceRPS: 10,
		Service: coca.ExponentialService(1),
		Horizon: 50000, Warmup: 2000, Seed: 42,
	})
	if err != nil {
		panic(err)
	}
	analytic := coca.AnalyticMeanJobs(5, 10)
	fmt.Printf("analytic mean jobs: %.0f\n", analytic)
	fmt.Printf("simulated within 10%%: %v\n",
		res.MeanJobs > 0.9*analytic && res.MeanJobs < 1.1*analytic)
	// Output:
	// analytic mean jobs: 1
	// simulated within 10%: true
}

// ExampleDeficitQueue shows the Eq. (17) carbon-deficit queue update.
func ExampleDeficitQueue() {
	q := coca.NewDeficitQueue(1, 2) // α = 1, z = 2 kWh/slot
	fmt.Println(q.Update(10, 3))    // [0 + 10 − 3 − 2]^+
	fmt.Println(q.Update(0, 10))    // [5 + 0 − 10 − 2]^+
	// Output:
	// 5
	// 0
}
