package coca

import (
	"math"
	"testing"
)

// TestFacadeSurface walks every public constructor and helper the facade
// re-exports, pinning the wiring between the root package and the internal
// implementations.
func TestFacadeSurface(t *testing.T) {
	// Model constructors.
	if got := Opteron(); got.NumSpeeds() != 4 {
		t.Errorf("Opteron speeds = %d", got.NumSpeeds())
	}
	if got := PaperCluster(50); got.TotalServers() != 216000 {
		t.Errorf("PaperCluster servers = %d", got.TotalServers())
	}
	if got := HeterogeneousCluster(300, 6); got.TotalServers() != 300 {
		t.Errorf("HeterogeneousCluster servers = %d", got.TotalServers())
	}
	we, wd := P3Weights(100, 5, 0.05, 0.02)
	if we != 10 || wd != 2 {
		t.Errorf("P3Weights = %v, %v", we, wd)
	}

	// Traces.
	for name, tr := range map[string]*Trace{
		"fiu":   FIUYear(1),
		"msr":   MSRYear(1, 0.4),
		"price": CAISOYear(1),
		"solar": SolarYear(1),
		"wind":  WindYear(1),
	} {
		if tr.Len() != 8760 {
			t.Errorf("%s trace length %d", name, tr.Len())
		}
	}

	// Tariffs.
	tariff, err := NewTieredTariff([]Tier{
		{UpToKWh: 10, Mult: 1},
		{UpToKWh: math.Inf(1), Mult: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tariff.Cost(15) != 20 {
		t.Errorf("tariff Cost(15) = %v", tariff.Cost(15))
	}
	var flat FlatTariff
	if flat.Cost(3) != 3 {
		t.Error("flat tariff broken")
	}

	// Scenario + policies end to end at tiny scale.
	sc, _, err := BuildScenario(ScenarioOptions{Slots: 96, N: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := NewCOCA(COCAFromScenario(sc, ConstantV(1e4, 1, sc.Slots)))
	if err != nil {
		t.Fatal(err)
	}
	run, err := Run(sc, pol)
	if err != nil {
		t.Fatal(err)
	}
	if s := SummarizeWithTrueUp(sc, run, 0.02); s.Slots != 96 {
		t.Errorf("summary slots = %d", s.Slots)
	}
	if _, err := NewOPT(sc); err != nil {
		t.Fatal(err)
	}
	if _, err := NewLookahead(sc, 48); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPerfectHP(sc, 48); err != nil {
		t.Fatal(err)
	}

	// Forecasters.
	fc := NoisyOracle{ErrFrac: 0.1, Seed: 3}.Forecast(sc.Workload)
	if m := ForecastMAPE(sc.Workload, fc); m <= 0 || m > 0.1 {
		t.Errorf("oracle MAPE = %v", m)
	}
	if _, err := NewPerfectHPWithForecast(sc, 48, fc); err != nil {
		t.Fatal(err)
	}
	if got := (SeasonalNaive{Period: 24}).Forecast(sc.Workload); got.Len() != sc.Workload.Len() {
		t.Error("seasonal naive length")
	}
	if got := (ProfileEWMA{Alpha: 0.5}).Forecast(sc.Workload); got.Len() != sc.Workload.Len() {
		t.Error("profile EWMA length")
	}

	// Controller with a GSD solver.
	cluster := HeterogeneousCluster(60, 6)
	ctrl, err := NewController(cluster, 0.01, ConstantV(1e4, 1, 4), 1, 1,
		&GSDSolver{Opts: GSDOptions{Delta: 1e6, MaxIters: 150, Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctrl.Step(SlotEnv{LambdaRPS: 100, PriceUSDPerKWh: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Settle(out, 1)

	// Batch scheduling.
	sched := NewBatchScheduler()
	jobs := BatchWorkload(4, 10, 1, 0.5, 1, 5)
	for _, j := range jobs {
		if err := sched.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	r := sched.Step(2, Opteron())
	if r.Slot != 0 {
		t.Errorf("batch step slot = %d", r.Slot)
	}
	if spare := BatchSpareServerHours(sc, run); len(spare) != sc.Slots {
		t.Errorf("spare length = %d", len(spare))
	}

	// Geo federation.
	site := GeoSite{
		Name: "a", Server: Opteron(), N: 50, Gamma: 0.95, PUE: 1,
		Price: CAISOYear(5),
		Portfolio: &Portfolio{
			OnsiteKW:   SolarYear(6),
			OffsiteKWh: WindYear(7),
			RECsKWh:    100, Alpha: 1,
		},
	}
	sys, err := NewGeoSystem([]GeoSite{site, site}, 0.01, 24)
	if err != nil {
		t.Fatal(err)
	}
	gout, err := sys.Step(50, 100)
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle(gout)

	// Queueing distributions.
	if DeterministicService(1) == nil || HyperexpService(1, 0.2) == nil {
		t.Error("service constructors returned nil")
	}

	// Experiments config.
	if DefaultExperiments().N != 216000 {
		t.Error("DefaultExperiments drifted")
	}
}
